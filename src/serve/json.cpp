//===-- serve/json.cpp ----------------------------------------*- C++ -*-===//

#include "serve/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace spidey::json;

void Value::set(std::string Key, Value Val) {
  if (!isObject())
    V = Object{};
  Object &O = std::get<Object>(V);
  for (auto &[K, Existing] : O)
    if (K == Key) {
      Existing = std::move(Val);
      return;
    }
  O.emplace_back(std::move(Key), std::move(Val));
}

void Value::push(Value Val) {
  if (!isArray())
    V = Array{};
  std::get<Array>(V).push_back(std::move(Val));
}

namespace {

void dumpString(const std::string &S, std::string &Out) {
  Out.push_back('"');
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(static_cast<char>(C));
      }
    }
  }
  Out.push_back('"');
}

void dumpValue(const Value &V, std::string &Out) {
  switch (V.kind()) {
  case Value::Kind::Null:
    Out += "null";
    break;
  case Value::Kind::Bool:
    Out += V.asBool() ? "true" : "false";
    break;
  case Value::Kind::Number: {
    double N = V.asNumber();
    char Buf[40];
    if (std::isfinite(N) && N == std::floor(N) && std::fabs(N) < 9.0e15)
      std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(N));
    else if (std::isfinite(N))
      std::snprintf(Buf, sizeof(Buf), "%.17g", N);
    else
      std::snprintf(Buf, sizeof(Buf), "null"); // JSON has no inf/nan
    Out += Buf;
    break;
  }
  case Value::Kind::String:
    dumpString(V.asString(), Out);
    break;
  case Value::Kind::Array: {
    Out.push_back('[');
    bool First = true;
    for (const Value &E : V.items()) {
      if (!First)
        Out.push_back(',');
      First = false;
      dumpValue(E, Out);
    }
    Out.push_back(']');
    break;
  }
  case Value::Kind::Object: {
    Out.push_back('{');
    bool First = true;
    for (const auto &[K, E] : V.members()) {
      if (!First)
        Out.push_back(',');
      First = false;
      dumpString(K, Out);
      Out.push_back(':');
      dumpValue(E, Out);
    }
    Out.push_back('}');
    break;
  }
  }
}

/// Recursive-descent parser over the request line.
class Parser {
public:
  Parser(std::string_view Text, std::string *Error)
      : Text(Text), Error(Error) {}

  std::optional<Value> run() {
    std::optional<Value> V = parseValue(0);
    if (!V)
      return std::nullopt;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing garbage");
    return V;
  }

private:
  std::optional<Value> fail(const char *Message) {
    if (Error && Error->empty())
      *Error = Message;
    return std::nullopt;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) == Word) {
      Pos += Word.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> parseString() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string Out;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (static_cast<unsigned char>(C) < 0x20) {
        fail("raw control character in string");
        return std::nullopt;
      }
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out.push_back(E);
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'u': {
        if (Pos + 4 > Text.size()) {
          fail("truncated \\u escape");
          return std::nullopt;
        }
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else {
            fail("bad \\u escape");
            return std::nullopt;
          }
        }
        // UTF-8 encode the BMP code point (surrogate pairs outside the
        // protocol's needs are passed through as two 3-byte sequences).
        if (Code < 0x80) {
          Out.push_back(static_cast<char>(Code));
        } else if (Code < 0x800) {
          Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        } else {
          Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
          Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        }
        break;
      }
      default:
        fail("unknown escape");
        return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Value> parseValue(int Depth) {
    if (Depth > 64)
      return fail("nesting too deep");
    skipSpace();
    if (Pos >= Text.size())
      return fail("empty input");
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Value O = Value::object();
      skipSpace();
      if (consume('}'))
        return O;
      while (true) {
        std::optional<std::string> Key = parseString();
        if (!Key)
          return std::nullopt;
        if (!consume(':'))
          return fail("expected ':'");
        std::optional<Value> V = parseValue(Depth + 1);
        if (!V)
          return std::nullopt;
        O.set(std::move(*Key), std::move(*V));
        if (consume(',')) {
          skipSpace();
          continue;
        }
        if (consume('}'))
          return O;
        return fail("expected ',' or '}'");
      }
    }
    if (C == '[') {
      ++Pos;
      Value A = Value::array();
      skipSpace();
      if (consume(']'))
        return A;
      while (true) {
        std::optional<Value> V = parseValue(Depth + 1);
        if (!V)
          return std::nullopt;
        A.push(std::move(*V));
        if (consume(','))
          continue;
        if (consume(']'))
          return A;
        return fail("expected ',' or ']'");
      }
    }
    if (C == '"') {
      std::optional<std::string> S = parseString();
      if (!S)
        return std::nullopt;
      return Value(std::move(*S));
    }
    if (literal("true"))
      return Value(true);
    if (literal("false"))
      return Value(false);
    if (literal("null"))
      return Value(nullptr);
    // Number.
    const char *Start = Text.data() + Pos;
    char *End = nullptr;
    double N = std::strtod(Start, &End);
    if (End == Start)
      return fail("expected a JSON value");
    Pos += static_cast<size_t>(End - Start);
    return Value(N);
  }

  std::string_view Text;
  std::string *Error;
  size_t Pos = 0;
};

} // namespace

std::string Value::dump() const {
  std::string Out;
  dumpValue(*this, Out);
  return Out;
}

std::optional<Value> Value::parse(std::string_view Text,
                                  std::string *Error) {
  if (Error)
    Error->clear();
  return Parser(Text, Error).run();
}
