//===-- corpus/generator.cpp - Synthetic workload generator ----*- C++ -*-===//
///
/// \file
/// Deterministic multi-file program generator calibrated to the large
/// benchmarks of figs. 7.1 and 7.6. Generated programs run without
/// faults by construction; under the monomorphic analysis the generic
/// mappers merge unrelated element types (the paper's motivation for
/// polymorphic analysis), which the Copy/Smart modes resolve. Knobs: total lines, component count, degree of
/// polymorphic reuse of generic library functions, and cross-component
/// call density.
///
//===----------------------------------------------------------------------===//

#include "corpus/corpus.h"

#include <cassert>
#include <random>
#include <sstream>

using namespace spidey;

namespace {

/// What a generated definition produces/consumes.
enum class DefKind {
  NumFn2,       ///< (f num num) -> num
  ListBuilder,  ///< (f num) -> list-of-num
  ListConsumer, ///< (f list-of-num) -> num
  LenConsumer,  ///< (f list-of-any) -> num
  Mapper,       ///< generic (f l) -> list      — polymorphic library
  FilterFn,     ///< generic (p l) -> list      — polymorphic library
  FoldFn,       ///< generic (f acc l) -> any   — polymorphic library
  NumData,      ///< a number
};

struct DefInfo {
  std::string Name;
  DefKind Kind;
  unsigned Component;
};

class Generator {
public:
  explicit Generator(const GeneratorConfig &Config)
      : Config(Config), Rng(Config.Seed) {}

  std::vector<SourceFile> run() {
    std::vector<SourceFile> Files;
    unsigned LinesPerComponent =
        std::max(10u, Config.TargetLines / std::max(1u, Config.NumComponents));
    for (unsigned C = 0; C < Config.NumComponents; ++C) {
      CurComponent = C;
      std::ostringstream OS;
      OS << "; generated component " << C << " (seed " << Config.Seed
         << ")\n";
      unsigned Lines = 1;
      // Every component gets a generic library suite early so polymorphic
      // reuse has local targets too.
      Lines += emitLibrary(OS);
      while (Lines < LinesPerComponent)
        Lines += emitDefinition(OS);
      Files.push_back({"gen" + std::to_string(C) + ".ss", OS.str()});
    }
    // Final main component aggregates data so everything is live.
    std::ostringstream OS;
    OS << "; generated main\n(define main-result\n  (+ 0";
    unsigned Uses = 0;
    for (const DefInfo &D : Defs)
      if (D.Kind == DefKind::NumData && Uses++ < 24)
        OS << " " << D.Name;
    OS << "))\n";
    Files.push_back({"genmain.ss", OS.str()});
    return Files;
  }

private:
  unsigned pct() { return Rng() % 100; }

  std::string freshName(const char *Stem) {
    return std::string(Stem) + std::to_string(CurComponent) + "x" +
           std::to_string(Counter++);
  }

  /// Picks an existing definition of the given kind, preferring the
  /// current component unless a cross-component call is rolled.
  const DefInfo *pick(DefKind Kind) {
    bool Cross = pct() < Config.CrossComponentPercent;
    const DefInfo *Local = nullptr, *Foreign = nullptr;
    // Scan backwards for recency (deterministic).
    for (auto It = Defs.rbegin(); It != Defs.rend(); ++It) {
      if (It->Kind != Kind)
        continue;
      if (It->Component == CurComponent) {
        if (!Local)
          Local = &*It;
      } else if (!Foreign) {
        Foreign = &*It;
      }
      if (Local && Foreign)
        break;
    }
    if (Cross && Foreign)
      return Foreign;
    return Local ? Local : Foreign;
  }

  /// A realistically sized generic library: map (with an accumulating
  /// helper and reversal), filter, and fold. These are the functions the
  /// polymorphic analyses duplicate per reference (§7.4).
  unsigned emitLibrary(std::ostringstream &OS) {
    std::string MapName = freshName("xform");
    OS << "(define (" << MapName << " g l)\n"
       << "  (letrec ([step (lambda (l acc)\n"
       << "                   (if (pair? l)\n"
       << "                       (step (cdr l) (cons (g (car l)) acc))\n"
       << "                       acc))]\n"
       << "           [rev (lambda (l acc)\n"
       << "                  (if (pair? l)\n"
       << "                      (rev (cdr l) (cons (car l) acc))\n"
       << "                      acc))])\n"
       << "    (rev (step l '()) '())))\n";
    Defs.push_back({MapName, DefKind::Mapper, CurComponent});
    std::string FilterName = freshName("keep");
    OS << "(define (" << FilterName << " p l)\n"
       << "  (if (pair? l)\n"
       << "      (if (p (car l))\n"
       << "          (cons (car l) (" << FilterName << " p (cdr l)))\n"
       << "          (" << FilterName << " p (cdr l)))\n"
       << "      '()))\n";
    Defs.push_back({FilterName, DefKind::FilterFn, CurComponent});
    std::string FoldName = freshName("crunch");
    OS << "(define (" << FoldName << " f acc l)\n"
       << "  (if (pair? l)\n"
       << "      (" << FoldName << " f (f acc (car l)) (cdr l))\n"
       << "      acc))\n";
    Defs.push_back({FoldName, DefKind::FoldFn, CurComponent});
    return 19;
  }

  unsigned emitDefinition(std::ostringstream &OS) {
    switch (Rng() % 10) {
    case 8:
    case 9:
      return emitData(OS);
    case 0:
      return emitData(OS);
    case 1:
    case 2: {
      // NumFn2, possibly composing an earlier one.
      std::string Name = freshName("calc");
      const DefInfo *Callee = pick(DefKind::NumFn2);
      OS << "(define (" << Name << " a b)\n";
      if (Callee && pct() < 70)
        OS << "  (+ (" << Callee->Name << " a b) (* a " << (1 + Rng() % 9)
           << ")))\n";
      else
        OS << "  (+ (* a " << (1 + Rng() % 9) << ") (- b "
           << (Rng() % 5) << ")))\n";
      Defs.push_back({Name, DefKind::NumFn2, CurComponent});
      return 2;
    }
    case 3: {
      std::string Name = freshName("build");
      OS << "(define (" << Name << " n)\n"
         << "  (if (zero? n)\n"
         << "      '()\n"
         << "      (cons n (" << Name << " (sub1 n)))))\n";
      Defs.push_back({Name, DefKind::ListBuilder, CurComponent});
      return 4;
    }
    case 4: {
      std::string Name = freshName("total");
      OS << "(define (" << Name << " l)\n"
         << "  (if (pair? l)\n"
         << "      (+ (car l) (" << Name << " (cdr l)))\n"
         << "      0))\n";
      Defs.push_back({Name, DefKind::ListConsumer, CurComponent});
      return 4;
    }
    case 5: {
      std::string Name = freshName("count");
      OS << "(define (" << Name << " l)\n"
         << "  (if (pair? l)\n"
         << "      (+ 1 (" << Name << " (cdr l)))\n"
         << "      0))\n";
      Defs.push_back({Name, DefKind::LenConsumer, CurComponent});
      return 4;
    }
    default:
      return emitData(OS);
    }
  }

  /// A data definition exercising the pipeline; this is where polymorphic
  /// reuse happens.
  unsigned emitData(std::ostringstream &OS) {
    {
      std::string Name = freshName("data");
      const DefInfo *Builder = pick(DefKind::ListBuilder);
      if (!Builder) {
        OS << "(define " << Name << " " << (Rng() % 100) << ")\n";
        Defs.push_back({Name, DefKind::NumData, CurComponent});
        return 1;
      }
      std::string List =
          "(" + Builder->Name + " " + std::to_string(3 + Rng() % 9) + ")";
      const DefInfo *Mapper = pick(DefKind::Mapper);
      bool UsePoly = Mapper && pct() < Config.PolyReusePercent;
      if (UsePoly) {
        // Chain the generic library at one of several element types; each
        // use site instantiates two or three schemas.
        const DefInfo *Filter = pick(DefKind::FilterFn);
        const DefInfo *Fold = pick(DefKind::FoldFn);
        if (pct() < 50 && Fold && Filter) {
          // num pipeline: map square, filter, fold with +.
          OS << "(define " << Name << "\n  (" << Fold->Name
             << " (lambda (a b) (+ a b)) 0\n   (" << Filter->Name
             << " (lambda (x) (> x " << (Rng() % 5) << "))\n    ("
             << Mapper->Name << " (lambda (x) (* x x)) " << List
             << "))))\n";
          Defs.push_back({Name, DefKind::NumData, CurComponent});
          return 4;
        }
        // pair pipeline: map to pairs, count.
        const DefInfo *Counter = pick(DefKind::LenConsumer);
        if (Counter) {
          OS << "(define " << Name << "\n  (" << Counter->Name << " ("
             << Mapper->Name << " (lambda (x) (cons x 'tag)) " << List
             << ")))\n";
          Defs.push_back({Name, DefKind::NumData, CurComponent});
          return 2;
        }
        OS << "(define " << Name << " 0)\n";
        Defs.push_back({Name, DefKind::NumData, CurComponent});
        return 1;
      }
      {
        const DefInfo *Consumer = pick(DefKind::ListConsumer);
        if (Consumer)
          OS << "(define " << Name << " (" << Consumer->Name << " " << List
             << "))\n";
        else
          OS << "(define " << Name << " 0)\n";
      }
      Defs.push_back({Name, DefKind::NumData, CurComponent});
      return 2;
    }
  }

  GeneratorConfig Config;
  std::mt19937 Rng;
  std::vector<DefInfo> Defs;
  unsigned CurComponent = 0;
  unsigned Counter = 0;
};

} // namespace

std::vector<SourceFile> spidey::generateProgram(const GeneratorConfig &Config) {
  return Generator(Config).run();
}

GeneratorConfig spidey::benchmarkConfig(std::string_view Name) {
  // Fig. 7.1 multi-file benchmarks (line counts from the paper).
  if (Name == "scanner")
    return {101, 8, 1253, 30, 25};
  if (Name == "zodiac")
    return {102, 15, 3419, 30, 25};
  if (Name == "nucleic")
    return {103, 12, 3432, 30, 25};
  if (Name == "sba")
    return {104, 30, 11560, 35, 25};
  if (Name == "mod-poly")
    return {105, 40, 17661, 55, 25};
  // Fig. 7.6 polymorphism benchmarks (single file).
  if (Name == "lattice")
    return {201, 1, 215, 60, 0};
  if (Name == "browse")
    return {202, 1, 233, 15, 0};
  if (Name == "splay")
    return {203, 1, 265, 15, 0};
  if (Name == "check")
    return {204, 1, 281, 60, 0};
  if (Name == "graphs")
    return {205, 1, 621, 15, 0};
  if (Name == "boyer")
    return {206, 1, 624, 50, 0};
  if (Name == "matrix")
    return {207, 1, 744, 55, 0};
  if (Name == "maze")
    return {208, 1, 857, 50, 0};
  if (Name == "nbody")
    return {209, 1, 880, 60, 0};
  if (Name == "nucleic-poly")
    return {210, 1, 3335, 50, 0};
  assert(false && "unknown benchmark configuration");
  return {};
}
