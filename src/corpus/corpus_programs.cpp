//===-- corpus/corpus_programs.cpp - Fig. 6.6 benchmark set ----*- C++ -*-===//
///
/// \file
/// Hand-written dialect programs standing in for the program components of
/// fig. 6.6 (simplification benchmarks), plus the sum.ss running example.
/// Each implements the algorithm its paper counterpart is named after.
///
//===----------------------------------------------------------------------===//

#include "corpus/corpus.h"

#include <cstdio>
#include <cstdlib>

using namespace spidey;

namespace {

const char *MapSrc = R"scm(
; map: apply f to every element of a list.
(define (map f l)
  (if (null? l)
      '()
      (cons (f (car l)) (map f (cdr l)))))
(define map-demo (map (lambda (x) (* x x)) (list 1 2 3 4)))
)scm";

const char *ReverseSrc = R"scm(
; reverse: accumulate the list back to front.
(define (rev-onto l acc)
  (if (null? l)
      acc
      (rev-onto (cdr l) (cons (car l) acc))))
(define (reverse l) (rev-onto l '()))
(define reverse-demo (reverse (list 1 2 3)))
)scm";

const char *SubstringSrc = R"scm(
; substring utilities: index-of, split, trim.
(define (char-at s i) (string-ref s i))
(define (index-of-from s c i)
  (if (>= i (string-length s))
      -1
      (if (eq? (char-at s i) c)
          i
          (index-of-from s c (+ i 1)))))
(define (index-of s c) (index-of-from s c 0))
(define (split-first s c)
  (let ([i (index-of s c)])
    (if (< i 0)
        (cons s "")
        (cons (substring s 0 i)
              (substring s (+ i 1) (string-length s))))))
(define (split s c)
  (let ([parts (split-first s c)])
    (if (string=? (cdr parts) "")
        (cons (car parts) '())
        (cons (car parts) (split (cdr parts) c)))))
(define (starts-with? s prefix)
  (if (> (string-length prefix) (string-length s))
      #f
      (string=? (substring s 0 (string-length prefix)) prefix)))
(define substring-demo (split "a,b,c" #\,))
)scm";

const char *QsortSrc = R"scm(
; qsort: quicksort over lists of numbers.
(define (filter keep? l)
  (if (null? l)
      '()
      (if (keep? (car l))
          (cons (car l) (filter keep? (cdr l)))
          (filter keep? (cdr l)))))
(define (append2 a b)
  (if (null? a)
      b
      (cons (car a) (append2 (cdr a) b))))
(define (qsort l)
  (if (null? l)
      '()
      (let ([pivot (car l)]
            [rest (cdr l)])
        (append2
         (qsort (filter (lambda (x) (< x pivot)) rest))
         (cons pivot
               (qsort (filter (lambda (x) (>= x pivot)) rest)))))))
(define (sorted? l)
  (if (null? l)
      #t
      (if (null? (cdr l))
          #t
          (and (<= (car l) (car (cdr l))) (sorted? (cdr l))))))
(define qsort-demo (qsort (list 3 1 4 1 5 9 2 6 5 3 5)))
(define qsort-ok (sorted? qsort-demo))
)scm";

const char *UnifySrc = R"scm(
; unify: first-order unification.
; Terms: (cons 'var name) | (cons 'const name) | (cons 'app (cons f args)),
; where args is a list of terms. Substitutions are assoc lists.
(define (var? t) (eq? (car t) 'var))
(define (const? t) (eq? (car t) 'const))
(define (app? t) (eq? (car t) 'app))
(define (var-name t) (cdr t))
(define (app-head t) (car (cdr t)))
(define (app-args t) (cdr (cdr t)))
(define (mk-var n) (cons 'var n))
(define (mk-const n) (cons 'const n))
(define (mk-app f args) (cons 'app (cons f args)))

(define (lookup-subst s n)
  (if (null? s)
      #f
      (if (eq? (car (car s)) n)
          (cdr (car s))
          (lookup-subst (cdr s) n))))

(define (walk t s)
  (if (var? t)
      (let ([bound (lookup-subst s (var-name t))])
        (if bound (walk bound s) t))
      t))

(define (occurs? n t s)
  (let ([t2 (walk t s)])
    (cond
     [(var? t2) (eq? (var-name t2) n)]
     [(app? t2) (occurs-any? n (app-args t2) s)]
     [else #f])))
(define (occurs-any? n ts s)
  (if (null? ts)
      #f
      (or (occurs? n (car ts) s) (occurs-any? n (cdr ts) s))))

(define (unify t1 t2 s)
  (if (eq? s 'fail)
      'fail
      (let ([a (walk t1 s)]
            [b (walk t2 s)])
        (cond
         [(and (var? a) (var? b) (eq? (var-name a) (var-name b))) s]
         [(var? a) (if (occurs? (var-name a) b s)
                       'fail
                       (cons (cons (var-name a) b) s))]
         [(var? b) (unify b a s)]
         [(and (const? a) (const? b))
          (if (eq? (cdr a) (cdr b)) s 'fail)]
         [(and (app? a) (app? b))
          (if (eq? (app-head a) (app-head b))
              (unify-all (app-args a) (app-args b) s)
              'fail)]
         [else 'fail]))))
(define (unify-all as bs s)
  (cond
   [(eq? s 'fail) 'fail]
   [(and (null? as) (null? bs)) s]
   [(null? as) 'fail]
   [(null? bs) 'fail]
   [else (unify-all (cdr as) (cdr bs)
                    (unify (car as) (car bs) s))]))

(define unify-demo
  (unify (mk-app 'f (list (mk-var 'x) (mk-const 'b)))
         (mk-app 'f (list (mk-const 'a) (mk-var 'y)))
         '()))
)scm";

const char *HopcroftSrc = R"scm(
; hopcroft: DFA minimization by iterated partition refinement (Moore).
; A DFA over a binary alphabet: transitions in two vectors, accepting
; states in a vector of booleans.
(define (build-range n f)
  (let loop ([i 0] [acc '()])
    (if (= i n)
        (rev acc)
        (loop (+ i 1) (cons (f i) acc)))))
(define (rev l)
  (let loop ([l l] [acc '()])
    (if (null? l) acc (loop (cdr l) (cons (car l) acc)))))
(define (vec-of-list l)
  (let ([v (make-vector (len l) 0)])
    (let loop ([l l] [i 0])
      (if (null? l)
          v
          (begin (vector-set! v i (car l)) (loop (cdr l) (+ i 1)))))))
(define (len l) (if (null? l) 0 (+ 1 (len (cdr l)))))

; Signature of a state: (class, class-of-succ0, class-of-succ1).
(define (signature cls t0 t1 q)
  (list (vector-ref cls q)
        (vector-ref cls (vector-ref t0 q))
        (vector-ref cls (vector-ref t1 q))))
(define (sig=? a b)
  (and (= (car a) (car b))
       (= (car (cdr a)) (car (cdr b)))
       (= (car (cdr (cdr a))) (car (cdr (cdr b))))))

; Assign new class numbers: states with equal signatures share a class.
(define (assign-classes n cls t0 t1)
  (let ([new (make-vector n -1)])
    (let loop ([q 0] [reps '()] [next 0])
      (if (= q n)
          new
          (let ([sig (signature cls t0 t1 q)])
            (let ([found (find-rep reps sig)])
              (if (< found 0)
                  (begin
                    (vector-set! new q next)
                    (loop (+ q 1) (cons (cons sig next) reps) (+ next 1)))
                  (begin
                    (vector-set! new q found)
                    (loop (+ q 1) reps next)))))))))
(define (find-rep reps sig)
  (if (null? reps)
      -1
      (if (sig=? (car (car reps)) sig)
          (cdr (car reps))
          (find-rep (cdr reps) sig))))

(define (classes=? n a b)
  (let loop ([q 0])
    (if (= q n)
        #t
        (and (= (vector-ref a q) (vector-ref b q)) (loop (+ q 1))))))

(define (minimize n t0 t1 accepting)
  (let ([cls0 (make-vector n 0)])
    (begin
      ; Initial partition: accepting vs non-accepting.
      (let loop ([q 0])
        (if (= q n)
            (void)
            (begin
              (vector-set! cls0 q (if (vector-ref accepting q) 1 0))
              (loop (+ q 1)))))
      (let refine ([cls cls0])
        (let ([next (assign-classes n cls t0 t1)])
          (if (classes=? n cls next)
              cls
              (refine next)))))))

(define (count-classes n cls)
  (let loop ([q 0] [m -1])
    (if (= q n)
        (+ m 1)
        (loop (+ q 1) (max m (vector-ref cls q))))))

; A 6-state DFA with two equivalent states.
(define t0 (vec-of-list (list 1 2 3 4 5 0)))
(define t1 (vec-of-list (list 2 3 4 5 0 1)))
(define acc (vec-of-list (list #f #f #t #f #f #t)))
(define hopcroft-demo (count-classes 6 (minimize 6 t0 t1 acc)))
)scm";

const char *CheckSrc = R"scm(
; check: a type checker for the simply typed lambda calculus.
; Terms:  (cons 'var x) | (cons 'lam (cons x (cons ty body)))
;       | (cons 'ap (cons f a)) | (cons 'lit n)
; Types:  'int | (cons 'arrow (cons t1 t2))
(define (ty-arrow a b) (cons 'arrow (cons a b)))
(define (ty-arrow? t) (if (pair? t) (eq? (car t) 'arrow) #f))
(define (arrow-from t) (car (cdr t)))
(define (arrow-to t) (cdr (cdr t)))
(define (ty=? a b)
  (if (eq? a 'int)
      (eq? b 'int)
      (if (ty-arrow? a)
          (and (ty-arrow? b)
               (ty=? (arrow-from a) (arrow-from b))
               (ty=? (arrow-to a) (arrow-to b)))
          #f)))

(define (env-lookup env x)
  (if (null? env)
      'unbound
      (if (eq? (car (car env)) x)
          (cdr (car env))
          (env-lookup (cdr env) x))))

(define (typecheck term env)
  (let ([tag (car term)])
    (cond
     [(eq? tag 'lit) 'int]
     [(eq? tag 'var)
      (let ([t (env-lookup env (cdr term))])
        (if (eq? t 'unbound) (error "unbound variable") t))]
     [(eq? tag 'lam)
      (let ([x (car (cdr term))]
            [ty (car (cdr (cdr term)))]
            [body (cdr (cdr (cdr term)))])
        (ty-arrow ty (typecheck body (cons (cons x ty) env))))]
     [(eq? tag 'ap)
      (let ([fty (typecheck (car (cdr term)) env)]
            [aty (typecheck (cdr (cdr term)) env)])
        (if (ty-arrow? fty)
            (if (ty=? (arrow-from fty) aty)
                (arrow-to fty)
                (error "argument type mismatch"))
            (error "applying a non-function")))]
     [else (error "bad term")])))

(define (mk-lam x ty body) (cons 'lam (cons x (cons ty body))))
(define (mk-ap f a) (cons 'ap (cons f a)))
(define (mk-var x) (cons 'var x))
(define (mk-lit n) (cons 'lit n))

; (λ (f : int → int) (λ (x : int) (f (f x)))) applied to id and 1.
(define twice
  (mk-lam 'f (ty-arrow 'int 'int)
          (mk-lam 'x 'int
                  (mk-ap (mk-var 'f) (mk-ap (mk-var 'f) (mk-var 'x))))))
(define check-demo (typecheck twice '()))
)scm";

const char *EscherFishSrc = R"scm(
; escher-fish: Henderson's picture combinators. A picture is a function
; from a frame (cons width height) to a list of segments; segments are
; pairs of points; points are pairs of numbers.
(define (pt x y) (cons x y))
(define (seg a b) (cons a b))
(define (blank) (lambda (frame) '()))
(define (poly pts)
  (lambda (frame)
    (let ([w (car frame)] [h (cdr frame)])
      (let loop ([ps pts] [acc '()])
        (if (null? (cdr ps))
            acc
            (loop (cdr ps)
                  (cons (seg (scale-pt (car ps) w h)
                             (scale-pt (car (cdr ps)) w h))
                        acc)))))))
(define (scale-pt p w h) (pt (* (car p) w) (* (cdr p) h)))
(define (append-segs a b)
  (if (null? a) b (cons (car a) (append-segs (cdr a) b))))
(define (over p q)
  (lambda (frame) (append-segs (p frame) (q frame))))
(define (beside p q)
  (lambda (frame)
    (let ([w (car frame)] [h (cdr frame)])
      (append-segs (shift-segs (p (cons (quotient w 2) h)) 0 0)
                   (shift-segs (q (cons (quotient w 2) h))
                               (quotient w 2) 0)))))
(define (above p q)
  (lambda (frame)
    (let ([w (car frame)] [h (cdr frame)])
      (append-segs (shift-segs (p (cons w (quotient h 2))) 0 0)
                   (shift-segs (q (cons w (quotient h 2)))
                               0 (quotient h 2))))))
(define (shift-segs segs dx dy)
  (if (null? segs)
      '()
      (let ([s (car segs)])
        (cons (seg (pt (+ (car (car s)) dx) (+ (cdr (car s)) dy))
                   (pt (+ (car (cdr s)) dx) (+ (cdr (cdr s)) dy)))
              (shift-segs (cdr segs) dx dy)))))
(define (quartet a b c d) (above (beside a b) (beside c d)))
(define fish
  (poly (list (pt 0 0) (pt 1 1) (pt 0 1) (pt 1 0) (pt 0 0))))
(define fish2 (quartet fish (blank) (blank) fish))
(define fish4 (quartet fish2 fish2 fish2 fish2))
(define (count-segs segs)
  (if (null? segs) 0 (+ 1 (count-segs (cdr segs)))))
(define escher-demo (count-segs (fish4 (cons 64 64))))
)scm";

const char *ScannerSrc = R"scm(
; scanner: a lexer producing a token list from a source string.
; Tokens: (cons 'ident name) | (cons 'number n) | (cons 'punct ch)
;       | (cons 'keyword name)
(define (alpha? c)
  (let ([n (char->integer c)])
    (or (and (>= n 97) (<= n 122)) (and (>= n 65) (<= n 90)))))
(define (digit? c)
  (let ([n (char->integer c)])
    (and (>= n 48) (<= n 57))))
(define (space? c)
  (or (eq? c #\space) (or (eq? c #\newline) (eq? c #\tab))))

(define (keyword? s)
  (or (string=? s "define")
      (or (string=? s "lambda")
          (or (string=? s "if") (string=? s "let")))))

(define (scan-ident src i end)
  (if (and (< i end)
           (or (alpha? (string-ref src i)) (digit? (string-ref src i))))
      (scan-ident src (+ i 1) end)
      i))
(define (scan-number src i end)
  (if (and (< i end) (digit? (string-ref src i)))
      (scan-number src (+ i 1) end)
      i))

(define (scan src)
  (let ([end (string-length src)])
    (let loop ([i 0] [toks '()])
      (if (>= i end)
          (rev-toks toks '())
          (let ([c (string-ref src i)])
            (cond
             [(space? c) (loop (+ i 1) toks)]
             [(alpha? c)
              (let ([j (scan-ident src i end)])
                (let ([text (substring src i j)])
                  (loop j (cons (if (keyword? text)
                                    (cons 'keyword text)
                                    (cons 'ident text))
                                toks))))]
             [(digit? c)
              (let ([j (scan-number src i end)])
                (loop j (cons (cons 'number
                                    (string->number (substring src i j)))
                              toks)))]
             [else (loop (+ i 1) (cons (cons 'punct c) toks))]))))))
(define (rev-toks l acc)
  (if (null? l) acc (rev-toks (cdr l) (cons (car l) acc))))

(define (count-kind toks kind)
  (if (null? toks)
      0
      (+ (if (eq? (car (car toks)) kind) 1 0)
         (count-kind (cdr toks) kind))))

(define scan-demo (scan "(define (f x) (if (< x 10) x 99))"))
(define scanner-idents (count-kind scan-demo 'ident))
(define scanner-numbers (count-kind scan-demo 'number))
)scm";

const char *SumSrc = R"scm(
; Sums leaves in a binary tree (the dissertation's running example).
(define (sum tree)
  (if (number? tree)
      tree
      (+ (sum (car tree))
         (sum (cdr tree)))))
(define sum-demo (sum (cons (cons '() 1) 2)))
)scm";

} // namespace

// Defined in corpus_casestudies.cpp.
namespace spidey::detail {
extern const char *WebServerSrc;
extern const char *WebServerBuggySrc;
extern const char *MetaEvalSrc;
extern const char *MatrixSrc;
const char *inflateSrc();
const char *inflateBuggySrc();
const char *hhlSrc();
const char *hhlBuggySrc();
} // namespace spidey::detail

const std::vector<CorpusEntry> &spidey::corpusPrograms() {
  static const std::vector<CorpusEntry> Programs = {
      {"map", MapSrc},
      {"reverse", ReverseSrc},
      {"substring", SubstringSrc},
      {"qsort", QsortSrc},
      {"unify", UnifySrc},
      {"hopcroft", HopcroftSrc},
      {"check", CheckSrc},
      {"escher-fish", EscherFishSrc},
      {"scanner", ScannerSrc},
      {"sum", SumSrc},
      {"webserver", detail::WebServerSrc},
      {"webserver-buggy", detail::WebServerBuggySrc},
      {"inflate", detail::inflateSrc()},
      {"inflate-buggy", detail::inflateBuggySrc()},
      {"hhl", detail::hhlSrc()},
      {"hhl-buggy", detail::hhlBuggySrc()},
      {"meta-eval", detail::MetaEvalSrc},
      {"matrix", detail::MatrixSrc},
  };
  return Programs;
}

const CorpusEntry &spidey::corpusProgram(std::string_view Name) {
  for (const CorpusEntry &E : corpusPrograms())
    if (Name == E.Name)
      return E;
  std::fprintf(stderr, "unknown corpus program '%.*s'\n",
               static_cast<int>(Name.size()), Name.data());
  std::abort();
}
