//===-- corpus/corpus.h - Benchmark programs and generator -----*- C++ -*-===//
///
/// \file
/// The benchmark corpus. Two sources:
///
///  - Hand-written dialect programs standing in for the paper's benchmark
///    components (fig. 6.6: map, reverse, substring, qsort, unify,
///    hopcroft, check, escher-fish, scanner) and the chapter-8 case
///    studies (web server, gunzip/inflate, the extended-direct-semantics
///    interpreter tower, the HHL prover). The original Scheme sources are
///    not archived; these are real programs implementing the same
///    algorithms in our dialect (see DESIGN.md, substitutions).
///
///  - A seeded, deterministic multi-file program generator calibrated to
///    the line/file counts and reuse patterns of the large benchmarks of
///    figs. 7.1 and 7.6 (scanner, zodiac, nucleic, sba, mod-poly;
///    lattice ... nucleic).
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_CORPUS_CORPUS_H
#define SPIDEY_CORPUS_CORPUS_H

#include "lang/parser.h"

#include <string>
#include <string_view>
#include <vector>

namespace spidey {

/// A named single-file corpus program.
struct CorpusEntry {
  const char *Name;
  const char *Source;
};

/// All hand-written single-file programs.
const std::vector<CorpusEntry> &corpusPrograms();

/// Looks a program up by name; aborts if missing (programmer error).
const CorpusEntry &corpusProgram(std::string_view Name);

/// The multi-file extended-direct-semantics interpreter tower (§8.3):
/// base/arith/cbv/control/store interpreters as units in separate files.
std::vector<SourceFile> interpreterTowerFiles();

/// Configuration for the synthetic program generator.
struct GeneratorConfig {
  unsigned Seed = 1;
  unsigned NumComponents = 1;
  unsigned TargetLines = 200; ///< total, split across components
  /// Fraction (0-100) of call sites that target generic "library"
  /// functions reused at several element types — the polymorphism knob of
  /// fig. 7.6.
  unsigned PolyReusePercent = 30;
  /// Fraction (0-100) of calls that cross component boundaries.
  unsigned CrossComponentPercent = 25;
};

/// Generates a deterministic multi-file program. The result always
/// parses, analyzes, and runs without faults (its top-level `main-result`
/// define evaluates successfully).
std::vector<SourceFile> generateProgram(const GeneratorConfig &Config);

/// Calibrated configurations named after the paper's benchmarks
/// ("scanner", "zodiac", "nucleic", "sba", "mod-poly" for fig. 7.1;
/// "lattice", "browse", "splay", "check", "graphs", "boyer", "matrix",
/// "maze", "nbody", "nucleic-poly" for fig. 7.6).
GeneratorConfig benchmarkConfig(std::string_view Name);

} // namespace spidey

#endif // SPIDEY_CORPUS_CORPUS_H
