//===-- corpus/corpus_tower.cpp - §8.3 interpreter tower -------*- C++ -*-===//
///
/// \file
/// The extended-direct-semantics interpreter tower of §8.3: a basic
/// interpreter extended by orthogonal interpreter units for arithmetic,
/// call-by-value functions, control operations (catch/throw via call/cc)
/// and assignments (ref/deref/setref via boxes). Each interpreter lives in
/// its own file as a unit taking the previous interpreter generator as its
/// import; main.ss links the tower, ties the recursive knot, and runs the
/// test suite.
///
//===----------------------------------------------------------------------===//

#include "corpus/corpus.h"

using namespace spidey;

std::vector<SourceFile> spidey::interpreterTowerFiles() {
  std::vector<SourceFile> Files;

  Files.push_back({"global.ss", R"scm(
; Shared helpers: expressions are tagged pairs, environments are assoc
; lists mapping symbols to values.
(define (tag-of e) (car e))
(define (payload e) (cdr e))
(define (env-empty) '())
(define (env-extend env name val) (cons (cons name val) env))
(define (env-lookup env name)
  (if (null? env)
      (error "unbound interpreted variable")
      (if (eq? (car (car env)) name)
          (cdr (car env))
          (env-lookup (cdr env) name))))
; Constructors for interpreted programs.
(define (mk-num n) (cons 'num n))
(define (mk-add1 e) (cons 'add1 e))
(define (mk-sub1 e) (cons 'sub1 e))
(define (mk-var x) (cons 'var x))
(define (mk-lam x body) (cons 'lam (cons x body)))
(define (mk-app f a) (cons 'app (cons f a)))
(define (mk-catch k body) (cons 'catch (cons k body)))
(define (mk-throw k e) (cons 'throw (cons k e)))
(define (mk-ref e) (cons 'ref e))
(define (mk-deref e) (cons 'deref e))
(define (mk-setref e v) (cons 'setref (cons e v)))
)scm"});

  Files.push_back({"baseM.ss", R"scm(
; The basic interpreter: numeric literals only; everything else goes to
; the imported (seed) generator.
(define base-layer
  (unit (import prev-gen) (export gen)
    (define gen
      (lambda (top)
        (lambda (exp env)
          (if (eq? (tag-of exp) 'num)
              (payload exp)
              (((unbox prev-gen) top) exp env)))))))
)scm"});

  Files.push_back({"arithM.ss", R"scm(
; Arithmetic: add1 and sub1.
(define arith-layer
  (unit (import prev-gen2) (export gen2)
    (define gen2
      (lambda (top)
        (lambda (exp env)
          (let ([t (tag-of exp)])
            (cond
             [(eq? t 'add1) (+ (top (payload exp) env) 1)]
             [(eq? t 'sub1) (- (top (payload exp) env) 1)]
             [else ((prev-gen2 top) exp env)])))))))
)scm"});

  Files.push_back({"cbvM.ss", R"scm(
; Call-by-value functions: variables, lambdas and applications.
(define cbv-layer
  (unit (import prev-gen3) (export gen3)
    (define gen3
      (lambda (top)
        (lambda (exp env)
          (let ([t (tag-of exp)])
            (cond
             [(eq? t 'var) (env-lookup env (payload exp))]
             [(eq? t 'lam)
              (let ([x (car (payload exp))]
                    [body (cdr (payload exp))])
                (lambda (v) (top body (env-extend env x v))))]
             [(eq? t 'app)
              (let ([f (top (car (payload exp)) env)]
                    [a (top (cdr (payload exp)) env)])
                (f a))]
             [else ((prev-gen3 top) exp env)])))))))
)scm"});

  Files.push_back({"controlM.ss", R"scm(
; Control operations: catch captures the continuation, throw invokes it.
(define control-layer
  (unit (import prev-gen4) (export gen4)
    (define gen4
      (lambda (top)
        (lambda (exp env)
          (let ([t (tag-of exp)])
            (cond
             [(eq? t 'catch)
              (call/cc
               (lambda (k)
                 (top (cdr (payload exp))
                      (env-extend env (car (payload exp)) k))))]
             [(eq? t 'throw)
              ((env-lookup env (car (payload exp)))
               (top (cdr (payload exp)) env))]
             [else ((prev-gen4 top) exp env)])))))))
)scm"});

  Files.push_back({"storeM.ss", R"scm(
; Assignments: ref allocates a cell, deref reads it, setref writes it.
(define store-layer
  (unit (import prev-gen5) (export gen5)
    (define gen5
      (lambda (top)
        (lambda (exp env)
          (let ([t (tag-of exp)])
            (cond
             [(eq? t 'ref) (box (top (payload exp) env))]
             [(eq? t 'deref) (unbox (top (payload exp) env))]
             [(eq? t 'setref)
              (set-box! (top (car (payload exp)) env)
                        (top (cdr (payload exp)) env))]
             [else ((prev-gen5 top) exp env)])))))))
)scm"});

  Files.push_back({"main.ss", R"scm(
; Link the tower, tie the recursive knot, and run the test programs.
(define seed-gen
  (box (lambda (top)
         (lambda (exp env) (error "unknown expression form")))))
(define tower
  (link (link (link (link base-layer arith-layer) cbv-layer)
              control-layer)
        store-layer))
(define top-gen (invoke tower seed-gen))
(define (interp exp env)
  ((top-gen interp) exp env))
(define (run exp) (interp exp (env-empty)))

; ((λx. add1 x) 41) => 42
(define test-app
  (run (mk-app (mk-lam 'x (mk-add1 (mk-var 'x))) (mk-num 41))))
; catch k in (add1 (throw k 10)) => 10
(define test-catch
  (run (mk-catch 'k (mk-add1 (mk-throw 'k (mk-num 10))))))
; deref (setref-target) => 7
(define test-store
  (run (mk-deref (mk-ref (mk-num 7)))))
(define tower-results (list test-app test-catch test-store))
)scm"});

  return Files;
}
