//===-- corpus/corpus_extra.cpp - Additional corpus programs ---*- C++ -*-===//
///
/// \file
/// Two further realistic programs for the corpus: a meta-circular
/// evaluator for a Scheme subset (the classic stress test for value-flow
/// analyses: closures in data, environments as association lists), and a
/// small matrix library over vectors (the fig. 7.6 "matrix" flavor:
/// index-heavy numeric code).
///
//===----------------------------------------------------------------------===//

#include "corpus/corpus.h"

namespace spidey::detail {

const char *MetaEvalSrc = R"scm(
; meta-eval: a meta-circular evaluator for a Scheme subset.
; Programs are built with tagged pairs; closures are host closures.
(define (tag e) (car e))
(define (mk-lit n) (cons 'lit n))
(define (mk-ref x) (cons 'ref x))
(define (mk-lam x body) (cons 'lam (cons x body)))
(define (mk-call f a) (cons 'call (cons f a)))
(define (mk-prim op a b) (cons 'prim (cons op (cons a b))))
(define (mk-ifz c t e) (cons 'ifz (cons c (cons t e))))

(define (env-lookup env x)
  (if (null? env)
      (error "meta-eval: unbound variable")
      (if (eq? (car (car env)) x)
          (cdr (car env))
          (env-lookup (cdr env) x))))
(define (env-bind env x v) (cons (cons x v) env))

(define (apply-prim op a b)
  (cond
   [(eq? op 'add) (+ a b)]
   [(eq? op 'sub) (- a b)]
   [(eq? op 'mul) (* a b)]
   [else (error "meta-eval: unknown primitive")]))

(define (meta-eval e env)
  (let ([t (tag e)])
    (cond
     [(eq? t 'lit) (cdr e)]
     [(eq? t 'ref) (env-lookup env (cdr e))]
     [(eq? t 'lam)
      (let ([x (car (cdr e))]
            [body (cdr (cdr e))])
        (lambda (v) (meta-eval body (env-bind env x v))))]
     [(eq? t 'call)
      ((meta-eval (car (cdr e)) env)
       (meta-eval (cdr (cdr e)) env))]
     [(eq? t 'prim)
      (apply-prim (car (cdr e))
                  (meta-eval (car (cdr (cdr e))) env)
                  (meta-eval (cdr (cdr (cdr e))) env))]
     [(eq? t 'ifz)
      (if (zero? (meta-eval (car (cdr e)) env))
          (meta-eval (car (cdr (cdr e))) env)
          (meta-eval (cdr (cdr (cdr e))) env))]
     [else (error "meta-eval: bad expression")])))

; (((λx. λy. x*x + y) 6) 5) = 41
(define prog
  (mk-call
   (mk-call (mk-lam 'x (mk-lam 'y (mk-prim 'add
                                           (mk-prim 'mul (mk-ref 'x)
                                                    (mk-ref 'x))
                                           (mk-ref 'y))))
            (mk-lit 6))
   (mk-lit 5)))
(define meta-demo (meta-eval prog '()))

; A Church-numeral exercise through the interpreted language:
; church 3 applied to add1 and 0.
(define church3
  (mk-lam 'f (mk-lam 'z
    (mk-call (mk-ref 'f)
             (mk-call (mk-ref 'f)
                      (mk-call (mk-ref 'f) (mk-ref 'z)))))))
(define church-demo
  (meta-eval (mk-call (mk-call church3
                               (mk-lam 'n (mk-prim 'add (mk-ref 'n)
                                                   (mk-lit 1))))
                      (mk-lit 0))
             '()))
)scm";

const char *MatrixSrc = R"scm(
; matrix: a small dense-matrix library over vectors of vectors.
(define (make-matrix rows cols fill)
  (let ([m (make-vector rows (vector))])
    (let loop ([r 0])
      (if (= r rows)
          m
          (begin
            (vector-set! m r (make-vector cols fill))
            (loop (+ r 1)))))))
(define (mat-rows m) (vector-length m))
(define (mat-cols m) (vector-length (vector-ref m 0)))
(define (mat-ref m r c) (vector-ref (vector-ref m r) c))
(define (mat-set! m r c v) (vector-set! (vector-ref m r) c v))

(define (identity n)
  (let ([m (make-matrix n n 0)])
    (let loop ([i 0])
      (if (= i n)
          m
          (begin (mat-set! m i i 1) (loop (+ i 1)))))))

(define (mat-mul a b)
  (let ([n (mat-rows a)] [p (mat-cols b)] [k (mat-cols a)])
    (let ([out (make-matrix n p 0)])
      (let rows ([i 0])
        (if (= i n)
            out
            (begin
              (let cols ([j 0])
                (if (= j p)
                    (void)
                    (begin
                      (let dot ([x 0] [acc 0])
                        (if (= x k)
                            (mat-set! out i j acc)
                            (dot (+ x 1)
                                 (+ acc (* (mat-ref a i x)
                                           (mat-ref b x j))))))
                      (cols (+ j 1)))))
              (rows (+ i 1))))))))

(define (mat-trace m)
  (let loop ([i 0] [acc 0])
    (if (= i (mat-rows m))
        acc
        (loop (+ i 1) (+ acc (mat-ref m i i))))))

; Fibonacci via matrix power: [[1 1][1 0]]^n.
(define fib-mat
  (let ([m (make-matrix 2 2 0)])
    (begin (mat-set! m 0 0 1) (mat-set! m 0 1 1)
           (mat-set! m 1 0 1) (mat-set! m 1 1 0)
           m)))
(define (mat-pow m n)
  (if (zero? n)
      (identity 2)
      (mat-mul m (mat-pow m (sub1 n)))))
(define matrix-demo (mat-ref (mat-pow fib-mat 10) 0 1)) ; fib(10) = 55
(define trace-demo (mat-trace (identity 5)))
)scm";

} // namespace spidey::detail
