//===-- corpus/corpus_casestudies.cpp - Chapter 8 case studies -*- C++ -*-===//
///
/// \file
/// Dialect analogues of the chapter-8 evaluation programs, each in a
/// "buggy" variant exhibiting the bug classes the dissertation reports
/// finding, and a repaired variant that the static debugger verifies
/// (0 unsafe checks). Sizes are scaled-down but the data/control patterns
/// match the paper's descriptions.
///
//===----------------------------------------------------------------------===//

#include "corpus/corpus.h"

#include <string>

namespace spidey::detail {

// --- §8.1: the backup web server -----------------------------------------
// Buggy: read-line's result (string ∪ eof) flows straight into
// string-length and string=? — the exact unsafe operation the paper found.
const char *WebServerBuggySrc = R"scm(
; backup-server.ss (buggy): serves a static page to every request.
(define response-body
  "The Rice University computer science department's Web server has been disconnected temporarily.")
(define (response-headers)
  (string-append
   "HTTP/1.0 200 OK\nContent-Type: text/html\nContent-Length: "
   (string-append (number->string (string-length response-body)) "\n\n")))
(define (skip-request-headers count)
  (let ([line (read-line)])
    ; BUG: line may be the end-of-file object.
    (if (= (string-length line) 0)
        count
        (skip-request-headers (+ count 1)))))
(define (serve-one)
  (let ([n (skip-request-headers 0)])
    (begin
      (display (response-headers))
      (display response-body)
      n)))
(define served (serve-one))
)scm";

// Repaired per §8.1: test for eof before using the line ("after
// simplifying two lines of code ... TOTAL CHECKS: 0").
const char *WebServerSrc = R"scm(
; backup-server.ss: serves a static page to every request.
(define response-body
  "The Rice University computer science department's Web server has been disconnected temporarily.")
(define (response-headers)
  (string-append
   "HTTP/1.0 200 OK\nContent-Type: text/html\nContent-Length: "
   (string-append (number->string (string-length response-body)) "\n\n")))
(define (skip-request-headers count)
  (let ([line (read-line)])
    (if (eof-object? line)
        count
        (if (= (string-length line) 0)
            count
            (skip-request-headers (+ count 1))))))
(define (serve-one)
  (let ([n (skip-request-headers 0)])
    (begin
      (display (response-headers))
      (display response-body)
      n)))
(define served (serve-one))
)scm";

// --- §8.2: gunzip / inflate ----------------------------------------------
// A bit-stream decoder in the style of inflate.ss. The buggy variant
// reproduces the paper's bug classes: a table field holding a number in
// some situations and a vector in others; a table stack initialized with
// zeros instead of vectors; nil passed where an empty vector is expected;
// and a missing end-of-file test.

static const char *InflateCommon = R"scm(
; Bit reader over the simulated input stream. State in boxes.
(define bit-buf (box 0))
(define bit-count (box 0))
(define (refill!)
  (let ([c (read-char)])
    (if (eof-object? c)
        #f
        (begin
          (set-box! bit-buf
                    (bitwise-ior (unbox bit-buf)
                                 (arithmetic-shift (char->integer c)
                                                   (unbox bit-count))))
          (set-box! bit-count (+ (unbox bit-count) 8))
          #t))))
(define (read-bits n)
  (if (< (unbox bit-count) n)
      (if (refill!)
          (read-bits n)
          -1)
      (let ([v (bitwise-and (unbox bit-buf)
                            (- (arithmetic-shift 1 n) 1))])
        (begin
          (set-box! bit-buf (arithmetic-shift (unbox bit-buf) (- 0 n)))
          (set-box! bit-count (- (unbox bit-count) n))
          v))))
)scm";

const char *InflateBuggyTail = R"scm(
; Code-table entries: (cons bits extra) where extra is — BUG — sometimes a
; base value (number) and sometimes a sub-table (vector), as in the huft
; structure's overloaded third field.
(define (entry bits extra) (cons bits extra))
(define (entry-bits e) (car e))
(define (entry-extra e) (cdr e))

(define (make-table)
  (let ([t (make-vector 8 0)])   ; BUG: zeros instead of entry vectors
    (begin
      (vector-set! t 0 (entry 1 16))
      (vector-set! t 1 (entry 2 32))
      (vector-set! t 2 (entry 2 (make-vector 2 (entry 3 48))))
      (vector-set! t 3 (entry 3 64))
      t)))

; BUG: the table stack starts as a vector of zeros; the decoder does
; vector-ref on whatever it finds there.
(define table-stack (make-vector 4 0))
(define (push-table! i t) (vector-set! table-stack i t))
(define (current-table i) (vector-ref table-stack i))

(define (decode-one table code)
  (let ([e (vector-ref table (modulo code 4))])
    (let ([extra (entry-extra e)])
      ; BUG: extra may be a number; vector-ref then faults.
      (+ (entry-bits e) (entry-bits (vector-ref extra 0))))))

(define (inflate-loop table n acc)
  (if (zero? n)
      acc
      (let ([code (read-bits 3)])
        (inflate-loop table (- n 1) (+ acc (decode-one table code))))))

(define (huft-build starting)
  ; BUG: callers pass '() instead of an empty vector for `starting`.
  (if (> (vector-length starting) 0)
      (make-table)
      (make-table)))

(define main-table (huft-build '()))
(define inflated (inflate-loop main-table 4 0))
)scm";

const char *InflateTail = R"scm(
; Repaired per §8.2: the entry's base value and sub-table live in separate
; fields; tables and the stack are initialized with vectors; empty vectors
; are passed instead of nil.
(define (entry bits base sub) (cons bits (cons base sub)))
(define (entry-bits e) (car e))
(define (entry-base e) (car (cdr e)))
(define (entry-sub e) (cdr (cdr e)))

(define empty-sub (vector))
(define (leaf bits base) (entry bits base empty-sub))

(define (make-table)
  (let ([t (make-vector 8 (leaf 0 0))])
    (begin
      (vector-set! t 0 (leaf 1 16))
      (vector-set! t 1 (leaf 2 32))
      (vector-set! t 2 (entry 2 0 (make-vector 2 (leaf 3 48))))
      (vector-set! t 3 (leaf 3 64))
      t)))

(define table-stack (make-vector 4 (make-vector 1 (leaf 0 0))))
(define (push-table! i t) (vector-set! table-stack i t))
(define (current-table i) (vector-ref table-stack i))

(define (decode-one table code)
  (let ([e (vector-ref table (modulo code 4))])
    (if (> (vector-length (entry-sub e)) 0)
        (+ (entry-bits e)
           (entry-bits (vector-ref (entry-sub e) 0)))
        (+ (entry-bits e) (entry-base e)))))

(define (inflate-loop table n acc)
  (if (zero? n)
      acc
      (let ([code (read-bits 3)])
        (if (< code 0)
            (error "inflate: unexpected end of input file")
            (inflate-loop table (- n 1)
                          (+ acc (decode-one table code)))))))

(define (huft-build starting)
  (if (> (vector-length starting) 0)
      (make-table)
      (make-table)))

(define main-table (huft-build (vector)))
(define inflated (inflate-loop main-table 4 0))
)scm";

// --- §8.4: the HHL hardware verifier -------------------------------------
// A sequent prover over a small heterogeneous logic. The buggy variant
// reproduces the paper's findings: a variable initialized with void and
// later used as a string; a two-argument function applied to one
// argument; car applied to a parser result that need not be a pair; and
// string operations applied to read-line's result.

static const char *HhlCommon = R"scm(
; Formulas: (cons 'atom sym) | (cons 'and (cons f g)) | (cons 'imp (cons f g)).
(define (atom s) (cons 'atom s))
(define (conj f g) (cons 'and (cons f g)))
(define (impl f g) (cons 'imp (cons f g)))
(define (tag f) (car f))
(define (left f) (car (cdr f)))
(define (right f) (cdr (cdr f)))

(define (member? x l)
  (if (null? l)
      #f
      (if (eq? (car l) x) #t (member? x (cdr l)))))

; Sequent prover: hypotheses |- goal, by decomposition.
(define (prove hyps goal depth)
  (if (> depth 20)
      #f
      (cond
       [(eq? (tag goal) 'atom) (member? (cdr goal) hyps)]
       [(eq? (tag goal) 'and)
        (and (prove hyps (left goal) (+ depth 1))
             (prove hyps (right goal) (+ depth 1)))]
       [(eq? (tag goal) 'imp)
        (prove (cons (hyp-name (left goal)) hyps)
               (right goal) (+ depth 1))]
       [else #f])))
(define (hyp-name f)
  (if (eq? (tag f) 'atom) (cdr f) 'compound))
)scm";

const char *HhlBuggyTail = R"scm(
; Parse goals of the form "a&b" / "a>b" / "a" from the input stream.
(define (parse-goal line)
  (if (< (string-length line) 1)  ; BUG: line may be eof
      'bad-goal
      (if (>= (string-length line) 3)
          (let ([op (string-ref line 1)])
            (cond
             [(eq? op #\&)
              (conj (atom (string->symbol (substring line 0 1)))
                    (atom (string->symbol (substring line 2 3))))]
             [(eq? op #\>)
              (impl (atom (string->symbol (substring line 0 1)))
                    (atom (string->symbol (substring line 2 3))))]
             [else 'bad-goal]))
          (atom (string->symbol (substring line 0 1))))))

; BUG: report-header is initialized with void and appended to below.
(define report-header (void))
(define (report verdict)
  (string-append report-header (if verdict "proved" "failed")))

(define (check-goal axioms)
  (let ([goal (parse-goal (read-line))])
    ; BUG: goal may be the symbol 'bad-goal; car then faults.
    (prove axioms (cons (car goal) (cdr goal)) 0)))

; BUG: two-argument helper applied to a single argument.
(define (conj-both a b) (conj a b))
(define tried (conj-both (atom 'p)))

(define verdict (check-goal (list 'a 'b)))
(define summary (report verdict))
)scm";

const char *HhlTail = R"scm(
(define (parse-goal line)
  (if (eof-object? line)
      'bad-goal
      (if (< (string-length line) 1)
          'bad-goal
          (if (>= (string-length line) 3)
              (let ([op (string-ref line 1)])
                (cond
                 [(eq? op #\&)
                  (conj (atom (string->symbol (substring line 0 1)))
                        (atom (string->symbol (substring line 2 3))))]
                 [(eq? op #\>)
                  (impl (atom (string->symbol (substring line 0 1)))
                        (atom (string->symbol (substring line 2 3))))]
                 [else 'bad-goal]))
              (atom (string->symbol (substring line 0 1)))))))

(define report-header "hhl: ")
(define (report verdict)
  (string-append report-header (if verdict "proved" "failed")))

(define (check-goal axioms)
  (let ([goal (parse-goal (read-line))])
    (if (symbol? goal)
        #f
        (prove axioms goal 0))))

(define (conj-both a b) (conj a b))
(define tried (conj-both (atom 'p) (atom 'q)))

(define verdict (check-goal (list 'a 'b)))
(define summary (report verdict))
)scm";

const char *inflateSrc() {
  static const std::string S = std::string(InflateCommon) + InflateTail;
  return S.c_str();
}
const char *inflateBuggySrc() {
  static const std::string S = std::string(InflateCommon) + InflateBuggyTail;
  return S.c_str();
}
const char *hhlSrc() {
  static const std::string S = std::string(HhlCommon) + HhlTail;
  return S.c_str();
}
const char *hhlBuggySrc() {
  static const std::string S = std::string(HhlCommon) + HhlBuggyTail;
  return S.c_str();
}

} // namespace spidey::detail
