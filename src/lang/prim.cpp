//===-- lang/prim.cpp -----------------------------------------*- C++ -*-===//

#include "lang/prim.h"

#include <cassert>
#include <string>
#include <unordered_map>

using namespace spidey;

namespace {

constexpr KindMask Any = AnyKindMask;
constexpr KindMask NumM = kindBit(ConstKind::Num);
constexpr KindMask StrM = kindBit(ConstKind::Str);
constexpr KindMask CharM = kindBit(ConstKind::Char);
constexpr KindMask SymM = kindBit(ConstKind::Sym);
constexpr KindMask PairM = kindBit(ConstKind::Pair);
constexpr KindMask BoxM = kindBit(ConstKind::BoxTag);
constexpr KindMask VecM = kindBit(ConstKind::VecTag);
constexpr KindMask BoolM = kindBit(ConstKind::True) | kindBit(ConstKind::False);
constexpr KindMask NilM = kindBit(ConstKind::Nil);
constexpr KindMask VoidM = kindBit(ConstKind::Void);
constexpr KindMask EofM = kindBit(ConstKind::Eof);

/// The primitive table, indexed by Prim. Order must match the enum.
const PrimSpec Specs[] = {
    // Pairs.
    {"cons", 2, 2, {Any}, 1, PairM, PrimShape::ConsShape},
    {"car", 1, 1, {PairM}, 1, NoKindMask, PrimShape::CarShape},
    {"cdr", 1, 1, {PairM}, 1, NoKindMask, PrimShape::CdrShape},
    {"pair?", 1, 1, {Any}, 1, BoolM, PrimShape::Generic},
    {"null?", 1, 1, {Any}, 1, BoolM, PrimShape::Generic},
    {"list", 0, -1, {Any}, 1, NilM | PairM, PrimShape::ListShape},
    // Boxes.
    {"box", 1, 1, {Any}, 1, BoxM, PrimShape::BoxShape},
    {"unbox", 1, 1, {BoxM}, 1, NoKindMask, PrimShape::UnboxShape},
    {"set-box!", 2, 2, {BoxM, Any}, 2, NoKindMask, PrimShape::SetBoxShape},
    {"box?", 1, 1, {Any}, 1, BoolM, PrimShape::Generic},
    // Vectors.
    {"make-vector", 1, 2, {NumM, Any}, 2, VecM, PrimShape::VectorShape},
    {"vector", 0, -1, {Any}, 1, VecM, PrimShape::VectorShape},
    {"vector-ref", 2, 2, {VecM, NumM}, 2, NoKindMask, PrimShape::VecRefShape},
    {"vector-set!", 3, 3, {VecM, NumM, Any}, 3, VoidM,
     PrimShape::VecSetShape},
    {"vector-length", 1, 1, {VecM}, 1, NumM, PrimShape::Generic},
    {"vector?", 1, 1, {Any}, 1, BoolM, PrimShape::Generic},
    // Arithmetic.
    {"+", 1, -1, {NumM}, 1, NumM, PrimShape::Generic},
    {"-", 1, -1, {NumM}, 1, NumM, PrimShape::Generic},
    {"*", 1, -1, {NumM}, 1, NumM, PrimShape::Generic},
    {"/", 2, -1, {NumM}, 1, NumM, PrimShape::Generic},
    {"quotient", 2, 2, {NumM}, 1, NumM, PrimShape::Generic},
    {"remainder", 2, 2, {NumM}, 1, NumM, PrimShape::Generic},
    {"modulo", 2, 2, {NumM}, 1, NumM, PrimShape::Generic},
    {"min", 1, -1, {NumM}, 1, NumM, PrimShape::Generic},
    {"max", 1, -1, {NumM}, 1, NumM, PrimShape::Generic},
    {"abs", 1, 1, {NumM}, 1, NumM, PrimShape::Generic},
    {"floor", 1, 1, {NumM}, 1, NumM, PrimShape::Generic},
    {"add1", 1, 1, {NumM}, 1, NumM, PrimShape::Generic},
    {"sub1", 1, 1, {NumM}, 1, NumM, PrimShape::Generic},
    {"zero?", 1, 1, {NumM}, 1, BoolM, PrimShape::Generic},
    {"<", 2, -1, {NumM}, 1, BoolM, PrimShape::Generic},
    {">", 2, -1, {NumM}, 1, BoolM, PrimShape::Generic},
    {"<=", 2, -1, {NumM}, 1, BoolM, PrimShape::Generic},
    {">=", 2, -1, {NumM}, 1, BoolM, PrimShape::Generic},
    {"=", 2, -1, {NumM}, 1, BoolM, PrimShape::Generic},
    {"number?", 1, 1, {Any}, 1, BoolM, PrimShape::Generic},
    {"bitwise-and", 2, -1, {NumM}, 1, NumM, PrimShape::Generic},
    {"bitwise-ior", 2, -1, {NumM}, 1, NumM, PrimShape::Generic},
    {"bitwise-xor", 2, -1, {NumM}, 1, NumM, PrimShape::Generic},
    {"arithmetic-shift", 2, 2, {NumM}, 1, NumM, PrimShape::Generic},
    {"random", 1, 1, {NumM}, 1, NumM, PrimShape::Generic},
    // General predicates and equality.
    {"not", 1, 1, {Any}, 1, BoolM, PrimShape::Generic},
    {"boolean?", 1, 1, {Any}, 1, BoolM, PrimShape::Generic},
    {"symbol?", 1, 1, {Any}, 1, BoolM, PrimShape::Generic},
    {"string?", 1, 1, {Any}, 1, BoolM, PrimShape::Generic},
    {"char?", 1, 1, {Any}, 1, BoolM, PrimShape::Generic},
    {"procedure?", 1, 1, {Any}, 1, BoolM, PrimShape::Generic},
    {"eof-object?", 1, 1, {Any}, 1, BoolM, PrimShape::Generic},
    {"eq?", 2, 2, {Any}, 1, BoolM, PrimShape::Generic},
    {"equal?", 2, 2, {Any}, 1, BoolM, PrimShape::Generic},
    // Strings and characters.
    {"string-length", 1, 1, {StrM}, 1, NumM, PrimShape::Generic},
    {"string-append", 0, -1, {StrM}, 1, StrM, PrimShape::Generic},
    {"substring", 3, 3, {StrM, NumM, NumM}, 3, StrM, PrimShape::Generic},
    {"string-ref", 2, 2, {StrM, NumM}, 2, CharM, PrimShape::Generic},
    {"string=?", 2, 2, {StrM, StrM}, 2, BoolM, PrimShape::Generic},
    {"number->string", 1, 1, {NumM}, 1, StrM, PrimShape::Generic},
    {"string->number", 1, 1, {StrM}, 1, NumM | kindBit(ConstKind::False),
     PrimShape::Generic},
    {"symbol->string", 1, 1, {SymM}, 1, StrM, PrimShape::Generic},
    {"string->symbol", 1, 1, {StrM}, 1, SymM, PrimShape::Generic},
    {"char->integer", 1, 1, {CharM}, 1, NumM, PrimShape::Generic},
    {"integer->char", 1, 1, {NumM}, 1, CharM, PrimShape::Generic},
    // Simulated I/O.
    {"display", 1, 1, {Any}, 1, VoidM, PrimShape::Generic},
    {"newline", 0, 0, {Any}, 1, VoidM, PrimShape::Generic},
    {"read-line", 0, 0, {Any}, 1, StrM | EofM, PrimShape::Generic},
    {"read-char", 0, 0, {Any}, 1, CharM | EofM, PrimShape::Generic},
    {"peek-char", 0, 0, {Any}, 1, CharM | EofM, PrimShape::Generic},
    // Errors.
    {"error", 1, -1, {Any}, 1, NoKindMask, PrimShape::BottomShape},
};

static_assert(sizeof(Specs) / sizeof(Specs[0]) ==
                  static_cast<size_t>(Prim::NumPrims),
              "primitive table out of sync with Prim enum");

} // namespace

const PrimSpec &spidey::primSpec(Prim P) {
  assert(P < Prim::NumPrims && "invalid primitive");
  return Specs[static_cast<size_t>(P)];
}

KindMask spidey::primArgMask(Prim P, unsigned Index) {
  const PrimSpec &S = primSpec(P);
  assert(S.NumArgMasks >= 1);
  unsigned I = Index < S.NumArgMasks ? Index : S.NumArgMasks - 1;
  return S.ArgMasks[I];
}

bool spidey::primIsChecked(Prim P) {
  const PrimSpec &S = primSpec(P);
  for (unsigned I = 0; I < S.NumArgMasks; ++I)
    if (S.ArgMasks[I] != AnyKindMask)
      return true;
  return false;
}

Prim spidey::lookupPrim(std::string_view Name) {
  static const std::unordered_map<std::string, Prim> Table = [] {
    std::unordered_map<std::string, Prim> M;
    for (unsigned I = 0; I < numPrims(); ++I)
      M.emplace(Specs[I].Name, static_cast<Prim>(I));
    return M;
  }();
  auto It = Table.find(std::string(Name));
  return It == Table.end() ? Prim::NumPrims : It->second;
}
