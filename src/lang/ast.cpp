//===-- lang/ast.cpp ------------------------------------------*- C++ -*-===//

#include "lang/ast.h"

#include <sstream>

using namespace spidey;

namespace {

void printExpr(const Program &P, ExprId Id, std::ostringstream &OS) {
  const Expr &E = P.expr(Id);
  auto PrintVar = [&](VarId V) { OS << P.Syms.name(P.var(V).Name); };
  auto PrintKids = [&](size_t From = 0) {
    for (size_t I = From; I < E.Kids.size(); ++I) {
      OS << ' ';
      printExpr(P, E.Kids[I], OS);
    }
  };
  auto PrintBindings = [&] {
    OS << " (";
    bool First = true;
    for (const Binding &B : E.Bindings) {
      if (!First)
        OS << ' ';
      First = false;
      OS << '[';
      PrintVar(B.Var);
      OS << ' ';
      printExpr(P, B.Init, OS);
      OS << ']';
    }
    OS << ')';
  };

  switch (E.K) {
  case ExprKind::Var:
    PrintVar(E.Var);
    return;
  case ExprKind::Num:
    if (E.Num == static_cast<long long>(E.Num))
      OS << static_cast<long long>(E.Num);
    else
      OS << E.Num;
    return;
  case ExprKind::Bool:
    OS << (E.BoolVal ? "#t" : "#f");
    return;
  case ExprKind::Str:
    OS << '"' << E.Str << '"';
    return;
  case ExprKind::Char:
    OS << "#\\" << E.CharVal;
    return;
  case ExprKind::Nil:
    OS << "'()";
    return;
  case ExprKind::Quote:
    OS << '\'' << P.Syms.name(E.Name);
    return;
  case ExprKind::Void:
    OS << "(void)";
    return;
  case ExprKind::Lambda: {
    OS << "(lambda (";
    bool First = true;
    for (VarId V : E.Params) {
      if (!First)
        OS << ' ';
      First = false;
      PrintVar(V);
    }
    OS << ')';
    PrintKids();
    OS << ')';
    return;
  }
  case ExprKind::App:
    OS << '(';
    printExpr(P, E.Kids[0], OS);
    PrintKids(1);
    OS << ')';
    return;
  case ExprKind::PrimApp:
    OS << '(' << primSpec(E.PrimOp).Name;
    PrintKids();
    OS << ')';
    return;
  case ExprKind::Let:
    OS << "(let";
    PrintBindings();
    PrintKids();
    OS << ')';
    return;
  case ExprKind::Letrec:
    OS << "(letrec";
    PrintBindings();
    PrintKids();
    OS << ')';
    return;
  case ExprKind::If:
    OS << "(if";
    PrintKids();
    OS << ')';
    return;
  case ExprKind::Begin:
    OS << "(begin";
    PrintKids();
    OS << ')';
    return;
  case ExprKind::Set:
    OS << "(set! ";
    PrintVar(E.Var);
    PrintKids();
    OS << ')';
    return;
  case ExprKind::Callcc:
    OS << "(call/cc";
    PrintKids();
    OS << ')';
    return;
  case ExprKind::Abort:
    OS << "(abort";
    PrintKids();
    OS << ')';
    return;
  case ExprKind::Unit:
    OS << "(unit (import ";
    PrintVar(E.Params[0]);
    OS << ") (export ";
    PrintVar(E.Params[1]);
    OS << ')';
    PrintBindings();
    PrintKids();
    OS << ')';
    return;
  case ExprKind::Link:
    OS << "(link";
    PrintKids();
    OS << ')';
    return;
  case ExprKind::Invoke:
    OS << "(invoke";
    PrintKids();
    OS << ' ';
    PrintVar(E.Var);
    OS << ')';
    return;
  case ExprKind::Class: {
    if (E.Kids.empty()) {
      OS << "object%";
      return;
    }
    OS << "(class ";
    printExpr(P, E.Kids[0], OS);
    OS << " (";
    bool First = true;
    for (VarId V : E.Params) {
      if (!First)
        OS << ' ';
      First = false;
      PrintVar(V);
    }
    OS << ')';
    for (const Binding &B : E.Bindings) {
      OS << " [";
      PrintVar(B.Var);
      OS << ' ';
      printExpr(P, B.Init, OS);
      OS << ']';
    }
    OS << ')';
    return;
  }
  case ExprKind::TypeAssert: {
    OS << "(: ";
    printExpr(P, E.Kids[0], OS);
    OS << " #x" << std::hex << E.Mask << std::dec << ')';
    return;
  }
  case ExprKind::StructApp: {
    const StructDecl &D = P.Structs[E.StructId];
    const std::string &N = P.Syms.name(D.Name);
    switch (static_cast<StructOpKind>(E.StructOp)) {
    case StructOpKind::Make:
      OS << "(make-" << N;
      break;
    case StructOpKind::Pred:
      OS << '(' << N << '?';
      break;
    case StructOpKind::Get:
      OS << '(' << N << '-' << P.Syms.name(D.Fields[E.FieldIndex]);
      break;
    case StructOpKind::Set:
      OS << "(set-" << N << '-' << P.Syms.name(D.Fields[E.FieldIndex])
         << '!';
      break;
    }
    PrintKids();
    OS << ')';
    return;
  }
  case ExprKind::MakeObj:
    OS << "(make-obj";
    PrintKids();
    OS << ')';
    return;
  case ExprKind::IvarRef:
    OS << "(ivar";
    PrintKids();
    OS << ' ' << P.Syms.name(E.Name) << ')';
    return;
  case ExprKind::IvarSet:
    OS << "(set-ivar! ";
    printExpr(P, E.Kids[0], OS);
    OS << ' ' << P.Syms.name(E.Name) << ' ';
    printExpr(P, E.Kids[1], OS);
    OS << ')';
    return;
  }
}

} // namespace

std::string Program::exprToString(ExprId Id) const {
  std::ostringstream OS;
  printExpr(*this, Id, OS);
  return OS.str();
}
