//===-- lang/prim.h - Primitive operations ---------------------*- C++ -*-===//
///
/// \file
/// The table of primitive operations (App. E.5 "Checking Scheme
/// Primitives"). Each primitive carries:
///   - arity bounds,
///   - per-argument domain masks (which abstract constants are acceptable;
///     the basis for MrSpidey's check sites, §4.3),
///   - a result mask (basic constants the result may contain), and
///   - an analysis "shape" for the primitives whose behavior needs
///     selectors (pairs §3.2, boxes §3.5, vectors by analogy with boxes).
///
/// The parser eta-expands primitives used in non-application position, so
/// PrimApp nodes are always fully applied.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_LANG_PRIM_H
#define SPIDEY_LANG_PRIM_H

#include "constraints/const_kind.h"

#include <cstdint>
#include <string_view>

namespace spidey {

enum class Prim : uint16_t {
  // Pairs (§3.2).
  Cons,
  Car,
  Cdr,
  IsPair,
  IsNull,
  ListOf,
  // Boxes (§3.5).
  BoxNew,
  Unbox,
  SetBox,
  IsBox,
  // Vectors (mutable arrays; analyzed like boxes with vec+/vec-).
  MakeVector,
  VectorLit,
  VectorRef,
  VectorSet,
  VectorLength,
  IsVector,
  // Arithmetic.
  Add,
  Sub,
  Mul,
  Div,
  Quotient,
  Remainder,
  Modulo,
  Min,
  Max,
  Abs,
  Floor,
  Add1,
  Sub1,
  IsZero,
  Lt,
  Gt,
  Le,
  Ge,
  NumEq,
  IsNumber,
  BitAnd,
  BitOr,
  BitXor,
  ArithShift,
  Random,
  // General predicates and equality.
  Not,
  IsBoolean,
  IsSymbol,
  IsString,
  IsChar,
  IsProcedure,
  IsEof,
  Eq,
  Equal,
  // Strings and characters.
  StringLength,
  StringAppend,
  Substring,
  StringRef,
  StringEqual,
  NumberToString,
  StringToNumber,
  SymbolToString,
  StringToSymbol,
  CharToInteger,
  IntegerToChar,
  // Simulated I/O.
  Display,
  Newline,
  ReadLine,
  ReadChar,
  PeekChar,
  // Errors.
  ErrorPrim,

  NumPrims
};

/// How the analysis derives constraints for a primitive application.
enum class PrimShape : uint8_t {
  Generic,      ///< args checked against masks; result from ResultMask
  ConsShape,    ///< pair tag + car/cdr lower bounds (fig. 3.2)
  CarShape,     ///< car(arg) <= result
  CdrShape,     ///< cdr(arg) <= result
  BoxShape,     ///< split-box construction (fig. 3.5)
  UnboxShape,   ///< box+(arg) <= result
  SetBoxShape,  ///< val <= box-(arg); result = val
  VectorShape,  ///< vec tag + split element var (make-vector / vector)
  VecRefShape,  ///< vec+(arg0) <= result
  VecSetShape,  ///< val <= vec-(arg0); result = void
  ListShape,    ///< builds a proper list: recursive pairs
  BottomShape,  ///< never returns (error)
};

/// Static description of one primitive.
struct PrimSpec {
  const char *Name;
  int8_t MinArgs;
  int8_t MaxArgs; ///< -1 for variadic
  /// Acceptance mask per argument position; positions beyond the last
  /// entry (and all positions of variadic primitives beyond MinArgs)
  /// reuse the last mask.
  KindMask ArgMasks[3];
  uint8_t NumArgMasks;
  KindMask ResultMask;
  PrimShape Shape;
};

/// Returns the spec for \p P.
const PrimSpec &primSpec(Prim P);

/// The acceptance mask for argument \p Index of \p P.
KindMask primArgMask(Prim P, unsigned Index);

/// True if this primitive has a run-time check (some argument's domain is
/// restricted), i.e. it is a "possible check" site in MrSpidey's summary.
bool primIsChecked(Prim P);

/// Name lookup; returns Prim::NumPrims if \p Name is not a primitive.
Prim lookupPrim(std::string_view Name);

/// The number of defined primitives.
constexpr unsigned numPrims() { return static_cast<unsigned>(Prim::NumPrims); }

} // namespace spidey

#endif // SPIDEY_LANG_PRIM_H
