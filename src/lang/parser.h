//===-- lang/parser.h - Surface syntax to AST ------------------*- C++ -*-===//
///
/// \file
/// Parses the Scheme-subset surface syntax into the AST of ast.h. Handles
/// binder resolution (lexical scopes over a program-wide top-level letrec
/// scope, cf. §3.4), the sugar forms (cond, and/or, when/unless, let*,
/// named let, define-with-header, quoted data), and eta-expansion of
/// primitives referenced in non-application position.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_LANG_PARSER_H
#define SPIDEY_LANG_PARSER_H

#include "lang/ast.h"
#include "support/diagnostic.h"

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace spidey {

/// A named source file to parse as one program component.
struct SourceFile {
  std::string Name;
  std::string Text;
};

/// Parses \p Files into \p P (which must be empty). Returns false and
/// reports to \p Diags on any syntax or scoping error.
bool parseProgram(Program &P, DiagnosticEngine &Diags,
                  const std::vector<SourceFile> &Files);

/// Convenience wrapper for single-file programs.
bool parseSource(Program &P, DiagnosticEngine &Diags, std::string_view Source,
                 std::string Name = "main.ss");

} // namespace spidey

#endif // SPIDEY_LANG_PARSER_H
