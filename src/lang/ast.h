//===-- lang/ast.h - Abstract syntax for the analyzed language -*- C++ -*-===//
///
/// \file
/// The analyzed language: the idealized lambda calculus Λ of chapter 2 of
/// the dissertation, extended per chapter 3 with pairs, first-class
/// continuations, assignable variables, boxes, vectors, units and classes,
/// plus the practical primitives of appendix E.5.
///
/// Expressions live in a flat arena (Program::Exprs) and reference each
/// other by ExprId; variables are resolved by the parser to dense VarIds.
/// Every expression doubles as a *labeled* expression in the paper's sense:
/// the analysis assigns each ExprId a set variable, and `sba(P)(l)` is the
/// constant set of that variable in the closed constraint system.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_LANG_AST_H
#define SPIDEY_LANG_AST_H

#include "lang/prim.h"
#include "support/source.h"
#include "support/symbol.h"

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace spidey {

using ExprId = uint32_t;
using VarId = uint32_t;

inline constexpr ExprId NoExpr = std::numeric_limits<ExprId>::max();
inline constexpr VarId NoVar = std::numeric_limits<VarId>::max();

/// Expression forms. See the file comment for the paper sections each form
/// comes from.
enum class ExprKind : uint8_t {
  // --- Λ core (§2.1) ---
  Var,    ///< variable reference (immutable or assignable; §3.4 rule ref)
  Num,    ///< numeric constant
  Bool,   ///< #t / #f
  Str,    ///< string literal
  Char,   ///< character literal
  Nil,    ///< '() — the empty list
  Quote,  ///< quoted symbol literal
  Void,   ///< the void value (result of set! targets etc.)
  Lambda, ///< (lambda (x ...) body) with an identifying function tag
  App,    ///< application of a non-primitive function
  Let,    ///< (let ([x V] ...) body); polymorphic when V is syntactic value
  If,     ///< (if c t e)
  Begin,  ///< (begin e ...)

  // --- primitives (§3.2, §3.5, App. E.5) ---
  PrimApp, ///< fully applied primitive operation

  // --- continuations (§3.3) ---
  Callcc, ///< (call/cc e) with an identifying continuation tag
  Abort,  ///< (abort e)

  // --- assignable variables (§3.4) ---
  Letrec, ///< (letrec ([z V] ...) body)
  Set,    ///< (set! z e)

  // --- units (§3.6) ---
  Unit,   ///< (unit (import w) (export z) (define z V)... body)
  Link,   ///< (link e1 e2)
  Invoke, ///< (invoke e z)

  // --- type assertions (App. D.5.1) ---
  TypeAssert, ///< (: e T): programmer-asserted kind set, checked + narrowed

  // --- declared constructors (App. D.5.4) ---
  StructApp, ///< make-S / S? / S-f / set-S-f! application

  // --- classes (§3.7) ---
  Class,   ///< (class N (z1 ... zk) [zk+1 V] ...)
  MakeObj, ///< (make-obj e)
  IvarRef, ///< (ivar e z)
  IvarSet, ///< (set-ivar! e z v)
};

/// A binding of a variable to an initializer expression (let/letrec/unit
/// defines/class instance-variable initializers).
struct Binding {
  VarId Var = NoVar;
  ExprId Init = NoExpr;
};

/// One expression node. Field usage by kind:
///  - Var/Set:      Var (Set also Kids[0] = rhs)
///  - Num/Bool/...: the literal payload fields
///  - Quote:        Name = the quoted symbol
///  - Lambda:       Params, Kids[0] = body
///  - App:          Kids[0] = function, Kids[1..] = arguments
///  - PrimApp:      PrimOp, Kids = arguments
///  - Let/Letrec:   Bindings, Kids[0] = body
///  - If:           Kids[0..2]
///  - Begin:        Kids = sequence
///  - Callcc/Abort/MakeObj: Kids[0]
///  - Unit:         Params[0] = import var (or NoVar), Params[1] = export
///                  var, Bindings = defines, Kids[0] = body
///  - Link:         Kids[0..1]
///  - Invoke:       Kids[0] = unit expr, Var = the assignable variable fed
///                  to the unit's import
///  - Class:        Kids[0] = super expr, Params = inherited ivar VarIds,
///                  Bindings = new ivars with initializers
///  - TypeAssert:   Kids[0] = asserted expression, Mask = accepted kinds
///  - IvarRef:      Kids[0] = object expr, Name = instance-variable name
///  - IvarSet:      Kids[0] = object expr, Kids[1] = value, Name = ivar name
struct Expr {
  ExprKind K = ExprKind::Void;
  SourceLoc Loc;

  VarId Var = NoVar;
  Symbol Name = InvalidSymbol;
  Prim PrimOp = Prim::NumPrims;
  KindMask Mask = 0; ///< TypeAssert: the asserted constant kinds
  uint32_t StructId = 0;   ///< StructApp: index into Program::Structs
  uint8_t StructOp = 0;    ///< StructApp: a StructOpKind
  uint32_t FieldIndex = 0; ///< StructApp: field for Get/Set
  double Num = 0;
  bool BoolVal = false;
  char CharVal = 0;
  std::string Str;

  std::vector<VarId> Params;
  std::vector<Binding> Bindings;
  std::vector<ExprId> Kids;
};

/// The operation a StructApp performs.
enum class StructOpKind : uint8_t { Make, Pred, Get, Set };

/// A declared constructor (define-struct name (field ...)), App. D.5.4:
/// each declaration introduces its own abstract-constant tag and split
/// field selectors, so structure accesses are checked precisely instead of
/// through pair encodings.
struct StructDecl {
  Symbol Name = InvalidSymbol;
  std::vector<Symbol> Fields;
  SourceLoc Loc;
};

/// Per-variable metadata.
struct VarInfo {
  Symbol Name = InvalidSymbol;
  SourceLoc Loc;
  bool Assignable = false; ///< letrec/define/unit/class-bound (§3.4)
  bool TopLevel = false;   ///< bound by a top-level (define ...)
  uint32_t Component = 0;  ///< component index of the binding occurrence
};

/// A top-level form in a component: either a definition or an expression
/// statement.
struct TopForm {
  VarId DefVar = NoVar; ///< NoVar for expression statements
  ExprId Body = NoExpr;
};

/// One program component (file/module) in the sense of chapter 7.
struct Component {
  std::string Name;
  std::string SourceText; ///< retained for hashing (§7.1) and markup
  std::vector<TopForm> Forms;
};

/// A whole (possibly multi-component) program.
///
/// Top-level `define`s share a single program-wide letrec scope, so
/// components may reference each other's definitions freely; the
/// componential analysis treats cross-component references as the external
/// variables of each component.
class Program {
public:
  SymbolTable Syms;
  std::vector<Expr> Exprs;
  std::vector<VarInfo> Vars;
  std::vector<Component> Components;
  std::vector<StructDecl> Structs;

  ExprId addExpr(Expr E) {
    Exprs.push_back(std::move(E));
    return static_cast<ExprId>(Exprs.size() - 1);
  }

  VarId addVar(VarInfo V) {
    Vars.push_back(V);
    return static_cast<VarId>(Vars.size() - 1);
  }

  const Expr &expr(ExprId Id) const { return Exprs[Id]; }
  Expr &expr(ExprId Id) { return Exprs[Id]; }
  const VarInfo &var(VarId Id) const { return Vars[Id]; }

  size_t numExprs() const { return Exprs.size(); }
  size_t numVars() const { return Vars.size(); }

  /// Renders an expression back to source-like syntax (tests, reports).
  std::string exprToString(ExprId Id) const;
};

} // namespace spidey

#endif // SPIDEY_LANG_AST_H
