//===-- lang/parser.cpp ---------------------------------------*- C++ -*-===//

#include "lang/parser.h"

#include "support/sexpr.h"

#include <cassert>
#include <unordered_map>

using namespace spidey;

namespace {

/// Keywords of the language; these may not be rebound.
enum class Keyword {
  NotAKeyword,
  Lambda,
  Let,
  LetStar,
  Letrec,
  Define,
  Set,
  If,
  Cond,
  Else,
  Begin,
  And,
  Or,
  When,
  Unless,
  Quote,
  Callcc,
  Abort,
  VoidForm,
  Unit,
  Import,
  Export,
  Link,
  Invoke,
  Class,
  MakeObj,
  Ivar,
  SetIvar,
  BaseClass,
  TypeAssert,
  DefineStruct,
};

class ParserImpl {
public:
  ParserImpl(Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {
    registerKeywords();
  }

  bool run(const std::vector<SourceFile> &Files) {
    // Read all files first.
    std::vector<std::vector<SExpr>> FileForms;
    for (size_t I = 0; I < Files.size(); ++I) {
      Component C;
      C.Name = Files[I].Name;
      C.SourceText = Files[I].Text;
      P.Components.push_back(std::move(C));
      FileForms.push_back(readSExprs(Files[I].Text,
                                     static_cast<uint32_t>(I), P.Syms, Diags));
    }
    if (Diags.hasErrors())
      return false;

    // Pass 1: register all top-level defines in the global scope (the
    // program-wide letrec of §3.4) and all structure declarations
    // (App. D.5.4).
    for (size_t I = 0; I < FileForms.size(); ++I) {
      CurrentComponent = static_cast<uint32_t>(I);
      for (const SExpr &Form : FileForms[I]) {
        if (isDefineForm(Form))
          registerTopDefine(Form);
        else if (isDefineStructForm(Form))
          registerStructDecl(Form);
      }
    }
    if (Diags.hasErrors())
      return false;

    // Pass 2: parse all forms.
    for (size_t I = 0; I < FileForms.size(); ++I) {
      CurrentComponent = static_cast<uint32_t>(I);
      for (const SExpr &Form : FileForms[I]) {
        if (isDefineStructForm(Form))
          continue; // fully handled in pass 1
        TopForm TF;
        if (isDefineForm(Form)) {
          auto [Var, Body] = parseTopDefine(Form);
          TF.DefVar = Var;
          TF.Body = Body;
        } else {
          TF.Body = parseExpr(Form);
        }
        P.Components[I].Forms.push_back(TF);
      }
    }
    return !Diags.hasErrors();
  }

private:
  //===--------------------------------------------------------------------===
  // Keyword machinery.
  //===--------------------------------------------------------------------===

  void registerKeywords() {
    auto Add = [&](const char *Name, Keyword K) {
      Keywords[P.Syms.intern(Name)] = K;
    };
    Add("lambda", Keyword::Lambda);
    Add("let", Keyword::Let);
    Add("let*", Keyword::LetStar);
    Add("letrec", Keyword::Letrec);
    Add("define", Keyword::Define);
    Add("set!", Keyword::Set);
    Add("if", Keyword::If);
    Add("cond", Keyword::Cond);
    Add("else", Keyword::Else);
    Add("begin", Keyword::Begin);
    Add("and", Keyword::And);
    Add("or", Keyword::Or);
    Add("when", Keyword::When);
    Add("unless", Keyword::Unless);
    Add("quote", Keyword::Quote);
    Add("call/cc", Keyword::Callcc);
    Add("call-with-current-continuation", Keyword::Callcc);
    Add("abort", Keyword::Abort);
    Add("void", Keyword::VoidForm);
    Add("unit", Keyword::Unit);
    Add("import", Keyword::Import);
    Add("export", Keyword::Export);
    Add("link", Keyword::Link);
    Add("invoke", Keyword::Invoke);
    Add("class", Keyword::Class);
    Add("make-obj", Keyword::MakeObj);
    Add("ivar", Keyword::Ivar);
    Add("set-ivar!", Keyword::SetIvar);
    Add("object%", Keyword::BaseClass);
    Add(":", Keyword::TypeAssert);
    Add("define-struct", Keyword::DefineStruct);
  }

  Keyword keywordOf(Symbol S) const {
    auto It = Keywords.find(S);
    return It == Keywords.end() ? Keyword::NotAKeyword : It->second;
  }

  //===--------------------------------------------------------------------===
  // Scopes.
  //===--------------------------------------------------------------------===

  struct Scope {
    std::unordered_map<Symbol, VarId> Bindings;
  };

  VarId lookupVar(Symbol S) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->Bindings.find(S);
      if (Found != It->Bindings.end())
        return Found->second;
    }
    auto Found = Globals.find(S);
    if (Found != Globals.end())
      return Found->second;
    return NoVar;
  }

  VarId bindVar(Symbol S, SourceLoc Loc, bool Assignable) {
    if (keywordOf(S) != Keyword::NotAKeyword) {
      Diags.error(Loc, "cannot bind keyword '" + P.Syms.name(S) + "'");
      return NoVar;
    }
    VarInfo Info;
    Info.Name = S;
    Info.Loc = Loc;
    Info.Assignable = Assignable;
    Info.Component = CurrentComponent;
    VarId Id = P.addVar(Info);
    assert(!Scopes.empty() && "bindVar outside a scope");
    Scopes.back().Bindings[S] = Id;
    return Id;
  }

  class ScopeGuard {
  public:
    explicit ScopeGuard(ParserImpl &Parser) : Parser(Parser) {
      Parser.Scopes.emplace_back();
    }
    ~ScopeGuard() { Parser.Scopes.pop_back(); }

  private:
    ParserImpl &Parser;
  };

  //===--------------------------------------------------------------------===
  // Top-level defines.
  //===--------------------------------------------------------------------===

  bool isDefineForm(const SExpr &Form) const {
    return Form.isList() && !Form.Elems.empty() && Form.Elems[0].isSymbol() &&
           keywordOf(Form.Elems[0].Sym) == Keyword::Define;
  }

  bool isDefineStructForm(const SExpr &Form) const {
    return Form.isList() && !Form.Elems.empty() && Form.Elems[0].isSymbol() &&
           keywordOf(Form.Elems[0].Sym) == Keyword::DefineStruct;
  }

  /// Registers (define-struct name (field ...)) and its derived operation
  /// names: make-name, name?, name-field, set-name-field!.
  void registerStructDecl(const SExpr &Form) {
    if (Form.Elems.size() != 3 || !Form.Elems[1].isSymbol() ||
        !Form.Elems[2].isList()) {
      Diags.error(Form.Loc, "malformed define-struct");
      return;
    }
    StructDecl Decl;
    Decl.Name = Form.Elems[1].Sym;
    Decl.Loc = Form.Loc;
    for (const SExpr &F : Form.Elems[2].Elems) {
      if (!F.isSymbol()) {
        Diags.error(F.Loc, "structure field must be an identifier");
        return;
      }
      Decl.Fields.push_back(F.Sym);
    }
    uint32_t Id = static_cast<uint32_t>(P.Structs.size());
    const std::string &N = P.Syms.name(Decl.Name);
    auto AddOp = [&](const std::string &OpName, StructOpKind Op,
                     uint32_t Field) {
      Symbol Sym = P.Syms.intern(OpName);
      if (StructOps.count(Sym) || Globals.count(Sym)) {
        Diags.error(Form.Loc, "duplicate definition of '" + OpName + "'");
        return;
      }
      StructOps[Sym] = {Id, Op, Field};
    };
    AddOp("make-" + N, StructOpKind::Make, 0);
    AddOp(N + "?", StructOpKind::Pred, 0);
    for (uint32_t F = 0; F < Decl.Fields.size(); ++F) {
      const std::string &FN = P.Syms.name(Decl.Fields[F]);
      AddOp(N + "-" + FN, StructOpKind::Get, F);
      AddOp("set-" + N + "-" + FN + "!", StructOpKind::Set, F);
    }
    P.Structs.push_back(std::move(Decl));
  }

  struct StructOpInfo {
    uint32_t StructId;
    StructOpKind Op;
    uint32_t Field;
  };

  unsigned structOpArity(const StructOpInfo &Info) const {
    switch (Info.Op) {
    case StructOpKind::Make:
      return static_cast<unsigned>(P.Structs[Info.StructId].Fields.size());
    case StructOpKind::Pred:
    case StructOpKind::Get:
      return 1;
    case StructOpKind::Set:
      return 2;
    }
    return 0;
  }

  /// Extracts the defined name of a (define x ...) or (define (f ...) ...)
  /// form; InvalidSymbol on malformed input.
  Symbol definedName(const SExpr &Form) const {
    if (Form.Elems.size() < 2)
      return InvalidSymbol;
    const SExpr &Head = Form.Elems[1];
    if (Head.isSymbol())
      return Head.Sym;
    if (Head.isList() && !Head.Elems.empty() && Head.Elems[0].isSymbol())
      return Head.Elems[0].Sym;
    return InvalidSymbol;
  }

  void registerTopDefine(const SExpr &Form) {
    Symbol Name = definedName(Form);
    if (Name == InvalidSymbol) {
      Diags.error(Form.Loc, "malformed define");
      return;
    }
    if (keywordOf(Name) != Keyword::NotAKeyword) {
      Diags.error(Form.Loc,
                  "cannot define keyword '" + P.Syms.name(Name) + "'");
      return;
    }
    if (Globals.count(Name) || StructOps.count(Name)) {
      Diags.error(Form.Loc,
                  "duplicate top-level definition of '" + P.Syms.name(Name) +
                      "'");
      return;
    }
    VarInfo Info;
    Info.Name = Name;
    Info.Loc = Form.Loc;
    Info.Assignable = true;
    Info.TopLevel = true;
    Info.Component = CurrentComponent;
    Globals[Name] = P.addVar(Info);
  }

  std::pair<VarId, ExprId> parseTopDefine(const SExpr &Form) {
    Symbol Name = definedName(Form);
    if (Name == InvalidSymbol)
      return {NoVar, addVoid(Form.Loc)};
    VarId Var = Globals.at(Name);
    ExprId Body;
    const SExpr &Head = Form.Elems[1];
    if (Head.isSymbol()) {
      if (Form.Elems.size() != 3) {
        Diags.error(Form.Loc, "define expects exactly one body expression");
        return {Var, addVoid(Form.Loc)};
      }
      Body = parseExpr(Form.Elems[2]);
    } else {
      // (define (f x ...) body...) => (define f (lambda (x ...) body...))
      Body = parseLambdaTail(Head, Form, 2, Form.Loc);
    }
    return {Var, Body};
  }

  //===--------------------------------------------------------------------===
  // Expressions.
  //===--------------------------------------------------------------------===

  ExprId addVoid(SourceLoc Loc) {
    Expr E;
    E.K = ExprKind::Void;
    E.Loc = Loc;
    return P.addExpr(std::move(E));
  }

  ExprId errorExpr(SourceLoc Loc, const std::string &Message) {
    Diags.error(Loc, Message);
    return addVoid(Loc);
  }

  ExprId parseExpr(const SExpr &S) {
    switch (S.K) {
    case SExpr::Kind::Number: {
      Expr E;
      E.K = ExprKind::Num;
      E.Loc = S.Loc;
      E.Num = S.Num;
      return P.addExpr(std::move(E));
    }
    case SExpr::Kind::Boolean: {
      Expr E;
      E.K = ExprKind::Bool;
      E.Loc = S.Loc;
      E.BoolVal = S.Bool;
      return P.addExpr(std::move(E));
    }
    case SExpr::Kind::String: {
      Expr E;
      E.K = ExprKind::Str;
      E.Loc = S.Loc;
      E.Str = S.Str;
      return P.addExpr(std::move(E));
    }
    case SExpr::Kind::Char: {
      Expr E;
      E.K = ExprKind::Char;
      E.Loc = S.Loc;
      E.CharVal = S.Ch;
      return P.addExpr(std::move(E));
    }
    case SExpr::Kind::Symbol:
      return parseIdentifier(S);
    case SExpr::Kind::List:
      return parseList(S);
    }
    return addVoid(S.Loc);
  }

  ExprId parseIdentifier(const SExpr &S) {
    Keyword K = keywordOf(S.Sym);
    if (K == Keyword::BaseClass)
      return makeBaseClass(S.Loc);
    if (K != Keyword::NotAKeyword)
      return errorExpr(S.Loc, "keyword '" + P.Syms.name(S.Sym) +
                                  "' used as an expression");
    VarId V = lookupVar(S.Sym);
    if (V != NoVar) {
      Expr E;
      E.K = ExprKind::Var;
      E.Loc = S.Loc;
      E.Var = V;
      return P.addExpr(std::move(E));
    }
    Prim Pr = lookupPrim(P.Syms.name(S.Sym));
    if (Pr != Prim::NumPrims)
      return etaExpandPrim(Pr, S.Loc);
    if (auto It = StructOps.find(S.Sym); It != StructOps.end())
      return etaExpandStructOp(It->second, S.Loc);
    return errorExpr(S.Loc, "unbound variable '" + P.Syms.name(S.Sym) + "'");
  }

  ExprId etaExpandStructOp(const StructOpInfo &Info, SourceLoc Loc) {
    ScopeGuard Guard(*this);
    Expr Lam;
    Lam.K = ExprKind::Lambda;
    Lam.Loc = Loc;
    Expr Call;
    Call.K = ExprKind::StructApp;
    Call.Loc = Loc;
    Call.StructId = Info.StructId;
    Call.StructOp = static_cast<uint8_t>(Info.Op);
    Call.FieldIndex = Info.Field;
    for (unsigned I = 0; I < structOpArity(Info); ++I) {
      VarId V = bindVar(P.Syms.fresh("eta"), Loc, false);
      Lam.Params.push_back(V);
      Expr Ref;
      Ref.K = ExprKind::Var;
      Ref.Loc = Loc;
      Ref.Var = V;
      Call.Kids.push_back(P.addExpr(std::move(Ref)));
    }
    Lam.Kids.push_back(P.addExpr(std::move(Call)));
    return P.addExpr(std::move(Lam));
  }

  /// Wraps a first-class use of a primitive in a lambda, e.g. car becomes
  /// (lambda (x) (car x)). Variadic primitives are expanded at MinArgs.
  ExprId etaExpandPrim(Prim Pr, SourceLoc Loc) {
    const PrimSpec &Spec = primSpec(Pr);
    unsigned Arity = static_cast<unsigned>(
        Spec.MinArgs > 0 ? Spec.MinArgs
                         : (Spec.MaxArgs > 0 ? Spec.MaxArgs : 0));
    // Binary default for variadic arithmetic-style primitives.
    if (Spec.MaxArgs < 0 && Spec.MinArgs <= 1)
      Arity = std::max(Arity, 1u);
    ScopeGuard Guard(*this);
    Expr Lam;
    Lam.K = ExprKind::Lambda;
    Lam.Loc = Loc;
    Expr Call;
    Call.K = ExprKind::PrimApp;
    Call.Loc = Loc;
    Call.PrimOp = Pr;
    for (unsigned I = 0; I < Arity; ++I) {
      Symbol Arg = P.Syms.fresh("eta");
      VarId V = bindVar(Arg, Loc, /*Assignable=*/false);
      Lam.Params.push_back(V);
      Expr Ref;
      Ref.K = ExprKind::Var;
      Ref.Loc = Loc;
      Ref.Var = V;
      Call.Kids.push_back(P.addExpr(std::move(Ref)));
    }
    Lam.Kids.push_back(P.addExpr(std::move(Call)));
    return P.addExpr(std::move(Lam));
  }

  ExprId parseList(const SExpr &S) {
    if (S.Elems.empty())
      return errorExpr(S.Loc, "empty application ()");
    const SExpr &Head = S.Elems[0];
    if (Head.isSymbol()) {
      // A lexically bound name shadows nothing keyword-wise (keywords are
      // reserved), but a top-level define may not shadow primitives?
      // Resolution order: keywords, then variables, then primitives.
      switch (keywordOf(Head.Sym)) {
      case Keyword::NotAKeyword:
        break;
      case Keyword::Lambda:
        return parseLambda(S);
      case Keyword::Let:
        return parseLet(S);
      case Keyword::LetStar:
        return parseLetStar(S);
      case Keyword::Letrec:
        return parseLetrec(S);
      case Keyword::Define:
        return errorExpr(S.Loc, "define is only allowed at top level");
      case Keyword::Set:
        return parseSet(S);
      case Keyword::If:
        return parseIf(S);
      case Keyword::Cond:
        return parseCond(S);
      case Keyword::Else:
        return errorExpr(S.Loc, "else outside cond");
      case Keyword::Begin:
        return parseBody(S, 1, S.Loc);
      case Keyword::And:
        return parseAnd(S, 1);
      case Keyword::Or:
        return parseOr(S, 1);
      case Keyword::When:
        return parseWhenUnless(S, /*Negate=*/false);
      case Keyword::Unless:
        return parseWhenUnless(S, /*Negate=*/true);
      case Keyword::Quote:
        return parseQuote(S);
      case Keyword::Callcc:
        return parseUnary(S, ExprKind::Callcc, "call/cc");
      case Keyword::Abort:
        return parseUnary(S, ExprKind::Abort, "abort");
      case Keyword::VoidForm:
        if (S.Elems.size() != 1)
          return errorExpr(S.Loc, "(void) takes no arguments");
        return addVoid(S.Loc);
      case Keyword::Unit:
        return parseUnit(S);
      case Keyword::Import:
      case Keyword::Export:
        return errorExpr(S.Loc, "import/export clause outside unit");
      case Keyword::Link:
        return parseLink(S);
      case Keyword::Invoke:
        return parseInvoke(S);
      case Keyword::Class:
        return parseClass(S);
      case Keyword::MakeObj:
        return parseUnary(S, ExprKind::MakeObj, "make-obj");
      case Keyword::Ivar:
        return parseIvarRef(S);
      case Keyword::SetIvar:
        return parseIvarSet(S);
      case Keyword::BaseClass:
        return errorExpr(S.Loc, "object% cannot be applied");
      case Keyword::TypeAssert:
        return parseTypeAssert(S);
      case Keyword::DefineStruct:
        return errorExpr(S.Loc,
                         "define-struct is only allowed at top level");
      }
      // Primitive or structure operation in head position (unless
      // shadowed by a variable).
      if (lookupVar(Head.Sym) == NoVar) {
        Prim Pr = lookupPrim(P.Syms.name(Head.Sym));
        if (Pr != Prim::NumPrims)
          return parsePrimApp(S, Pr);
        if (auto It = StructOps.find(Head.Sym); It != StructOps.end())
          return parseStructApp(S, It->second);
      }
    }
    // General application.
    Expr App;
    App.K = ExprKind::App;
    App.Loc = S.Loc;
    for (const SExpr &E : S.Elems)
      App.Kids.push_back(parseExpr(E));
    return P.addExpr(std::move(App));
  }

  ExprId parsePrimApp(const SExpr &S, Prim Pr) {
    const PrimSpec &Spec = primSpec(Pr);
    int NumArgs = static_cast<int>(S.Elems.size()) - 1;
    if (NumArgs < Spec.MinArgs ||
        (Spec.MaxArgs >= 0 && NumArgs > Spec.MaxArgs))
      return errorExpr(S.Loc, std::string("wrong number of arguments to ") +
                                  Spec.Name);
    Expr E;
    E.K = ExprKind::PrimApp;
    E.Loc = S.Loc;
    E.PrimOp = Pr;
    for (size_t I = 1; I < S.Elems.size(); ++I)
      E.Kids.push_back(parseExpr(S.Elems[I]));
    return P.addExpr(std::move(E));
  }

  /// Parses body forms S.Elems[From..] into a single expression (wrapping
  /// in Begin if needed).
  ExprId parseStructApp(const SExpr &S, const StructOpInfo &Info) {
    if (S.Elems.size() - 1 != structOpArity(Info))
      return errorExpr(S.Loc, "wrong number of arguments to structure "
                              "operation");
    Expr E;
    E.K = ExprKind::StructApp;
    E.Loc = S.Loc;
    E.StructId = Info.StructId;
    E.StructOp = static_cast<uint8_t>(Info.Op);
    E.FieldIndex = Info.Field;
    for (size_t I = 1; I < S.Elems.size(); ++I)
      E.Kids.push_back(parseExpr(S.Elems[I]));
    return P.addExpr(std::move(E));
  }

  ExprId parseBody(const SExpr &S, size_t From, SourceLoc Loc) {
    if (S.Elems.size() <= From)
      return errorExpr(Loc, "empty body");
    if (S.Elems.size() == From + 1)
      return parseExpr(S.Elems[From]);
    Expr Seq;
    Seq.K = ExprKind::Begin;
    Seq.Loc = Loc;
    for (size_t I = From; I < S.Elems.size(); ++I)
      Seq.Kids.push_back(parseExpr(S.Elems[I]));
    return P.addExpr(std::move(Seq));
  }

  /// Parses (lambda <ParamsList> body...) where ParamsList = S.Elems[1] and
  /// body starts at index 2. Also used for define-with-header.
  ExprId parseLambdaTail(const SExpr &ParamsList, const SExpr &S,
                         size_t BodyFrom, SourceLoc Loc) {
    ScopeGuard Guard(*this);
    Expr Lam;
    Lam.K = ExprKind::Lambda;
    Lam.Loc = Loc;
    size_t Start = isDefineHeader(ParamsList, S) ? 1 : 0;
    for (size_t I = Start; I < ParamsList.Elems.size(); ++I) {
      const SExpr &Param = ParamsList.Elems[I];
      if (!Param.isSymbol()) {
        Diags.error(Param.Loc, "parameter must be an identifier");
        continue;
      }
      Lam.Params.push_back(bindVar(Param.Sym, Param.Loc, false));
    }
    Lam.Kids.push_back(parseBody(S, BodyFrom, Loc));
    return P.addExpr(std::move(Lam));
  }

  bool isDefineHeader(const SExpr &ParamsList, const SExpr &S) const {
    // In (define (f x ...) ...), the first element of the header is the
    // function name, not a parameter.
    return isDefineForm(S) && &ParamsList == &S.Elems[1];
  }

  ExprId parseLambda(const SExpr &S) {
    if (S.Elems.size() < 3 || !S.Elems[1].isList())
      return errorExpr(S.Loc, "malformed lambda");
    return parseLambdaTail(S.Elems[1], S, 2, S.Loc);
  }

  /// Parses the [x e] binding pairs of a let/letrec clause list.
  bool parseBindingPairs(const SExpr &Clauses,
                         std::vector<std::pair<Symbol, const SExpr *>> &Out) {
    if (!Clauses.isList()) {
      Diags.error(Clauses.Loc, "expected binding list");
      return false;
    }
    for (const SExpr &Pair : Clauses.Elems) {
      if (!Pair.isList() || Pair.Elems.size() != 2 ||
          !Pair.Elems[0].isSymbol()) {
        Diags.error(Pair.Loc, "expected [name expr] binding");
        return false;
      }
      Out.emplace_back(Pair.Elems[0].Sym, &Pair.Elems[1]);
    }
    return true;
  }

  ExprId parseLet(const SExpr &S) {
    if (S.Elems.size() >= 3 && S.Elems[1].isSymbol())
      return parseNamedLet(S);
    if (S.Elems.size() < 3)
      return errorExpr(S.Loc, "malformed let");
    std::vector<std::pair<Symbol, const SExpr *>> Pairs;
    if (!parseBindingPairs(S.Elems[1], Pairs))
      return addVoid(S.Loc);
    // Initializers are parsed in the outer scope.
    std::vector<ExprId> Inits;
    Inits.reserve(Pairs.size());
    for (auto &[Name, Init] : Pairs)
      Inits.push_back(parseExpr(*Init));
    ScopeGuard Guard(*this);
    Expr Let;
    Let.K = ExprKind::Let;
    Let.Loc = S.Loc;
    for (size_t I = 0; I < Pairs.size(); ++I) {
      VarId V = bindVar(Pairs[I].first, S.Elems[1].Elems[I].Loc, false);
      Let.Bindings.push_back({V, Inits[I]});
    }
    Let.Kids.push_back(parseBody(S, 2, S.Loc));
    return P.addExpr(std::move(Let));
  }

  /// (let loop ([x e] ...) body) =>
  /// (letrec ([loop (lambda (x ...) body)]) (loop e ...))
  ExprId parseNamedLet(const SExpr &S) {
    if (S.Elems.size() < 4 || !S.Elems[2].isList())
      return errorExpr(S.Loc, "malformed named let");
    std::vector<std::pair<Symbol, const SExpr *>> Pairs;
    if (!parseBindingPairs(S.Elems[2], Pairs))
      return addVoid(S.Loc);
    std::vector<ExprId> Inits;
    for (auto &[Name, Init] : Pairs)
      Inits.push_back(parseExpr(*Init));

    ScopeGuard Outer(*this);
    VarId LoopVar = bindVar(S.Elems[1].Sym, S.Elems[1].Loc,
                            /*Assignable=*/true);
    // The lambda.
    ExprId LamId;
    {
      ScopeGuard Inner(*this);
      Expr Lam;
      Lam.K = ExprKind::Lambda;
      Lam.Loc = S.Loc;
      for (auto &[Name, Init] : Pairs) {
        (void)Init;
        Lam.Params.push_back(bindVar(Name, S.Loc, false));
      }
      Lam.Kids.push_back(parseBody(S, 3, S.Loc));
      LamId = P.addExpr(std::move(Lam));
    }
    // The initial call.
    Expr Call;
    Call.K = ExprKind::App;
    Call.Loc = S.Loc;
    {
      Expr Ref;
      Ref.K = ExprKind::Var;
      Ref.Loc = S.Loc;
      Ref.Var = LoopVar;
      Call.Kids.push_back(P.addExpr(std::move(Ref)));
    }
    for (ExprId Init : Inits)
      Call.Kids.push_back(Init);
    ExprId CallId = P.addExpr(std::move(Call));

    Expr Rec;
    Rec.K = ExprKind::Letrec;
    Rec.Loc = S.Loc;
    Rec.Bindings.push_back({LoopVar, LamId});
    Rec.Kids.push_back(CallId);
    return P.addExpr(std::move(Rec));
  }

  ExprId parseLetStar(const SExpr &S) {
    if (S.Elems.size() < 3)
      return errorExpr(S.Loc, "malformed let*");
    std::vector<std::pair<Symbol, const SExpr *>> Pairs;
    if (!parseBindingPairs(S.Elems[1], Pairs))
      return addVoid(S.Loc);
    return parseLetStarChain(Pairs, 0, S);
  }

  ExprId
  parseLetStarChain(const std::vector<std::pair<Symbol, const SExpr *>> &Pairs,
                    size_t Index, const SExpr &S) {
    if (Index == Pairs.size())
      return parseBody(S, 2, S.Loc);
    ExprId Init = parseExpr(*Pairs[Index].second);
    ScopeGuard Guard(*this);
    Expr Let;
    Let.K = ExprKind::Let;
    Let.Loc = S.Loc;
    VarId V = bindVar(Pairs[Index].first, S.Loc, false);
    Let.Bindings.push_back({V, Init});
    Let.Kids.push_back(parseLetStarChain(Pairs, Index + 1, S));
    return P.addExpr(std::move(Let));
  }

  ExprId parseLetrec(const SExpr &S) {
    if (S.Elems.size() < 3)
      return errorExpr(S.Loc, "malformed letrec");
    std::vector<std::pair<Symbol, const SExpr *>> Pairs;
    if (!parseBindingPairs(S.Elems[1], Pairs))
      return addVoid(S.Loc);
    ScopeGuard Guard(*this);
    Expr Rec;
    Rec.K = ExprKind::Letrec;
    Rec.Loc = S.Loc;
    std::vector<VarId> Vars;
    for (auto &[Name, Init] : Pairs) {
      (void)Init;
      Vars.push_back(bindVar(Name, S.Loc, /*Assignable=*/true));
    }
    for (size_t I = 0; I < Pairs.size(); ++I)
      Rec.Bindings.push_back({Vars[I], parseExpr(*Pairs[I].second)});
    Rec.Kids.push_back(parseBody(S, 2, S.Loc));
    return P.addExpr(std::move(Rec));
  }

  ExprId parseSet(const SExpr &S) {
    if (S.Elems.size() != 3 || !S.Elems[1].isSymbol())
      return errorExpr(S.Loc, "malformed set!");
    VarId V = lookupVar(S.Elems[1].Sym);
    if (V == NoVar)
      return errorExpr(S.Loc, "set! of unbound variable '" +
                                  P.Syms.name(S.Elems[1].Sym) + "'");
    if (!P.var(V).Assignable)
      return errorExpr(S.Loc, "set! of immutable variable '" +
                                  P.Syms.name(S.Elems[1].Sym) + "'");
    Expr E;
    E.K = ExprKind::Set;
    E.Loc = S.Loc;
    E.Var = V;
    E.Kids.push_back(parseExpr(S.Elems[2]));
    return P.addExpr(std::move(E));
  }

  ExprId parseIf(const SExpr &S) {
    if (S.Elems.size() != 3 && S.Elems.size() != 4)
      return errorExpr(S.Loc, "malformed if");
    Expr E;
    E.K = ExprKind::If;
    E.Loc = S.Loc;
    E.Kids.push_back(parseExpr(S.Elems[1]));
    E.Kids.push_back(parseExpr(S.Elems[2]));
    E.Kids.push_back(S.Elems.size() == 4 ? parseExpr(S.Elems[3])
                                         : addVoid(S.Loc));
    return P.addExpr(std::move(E));
  }

  ExprId parseCond(const SExpr &S) { return parseCondClauses(S, 1); }

  ExprId parseCondClauses(const SExpr &S, size_t Index) {
    if (Index >= S.Elems.size())
      return addVoid(S.Loc);
    const SExpr &Clause = S.Elems[Index];
    if (!Clause.isList() || Clause.Elems.empty())
      return errorExpr(Clause.Loc, "malformed cond clause");
    bool IsElse = Clause.Elems[0].isSymbol() &&
                  keywordOf(Clause.Elems[0].Sym) == Keyword::Else;
    if (IsElse) {
      if (Index + 1 != S.Elems.size())
        return errorExpr(Clause.Loc, "else clause must be last");
      return parseBody(Clause, 1, Clause.Loc);
    }
    if (Clause.Elems.size() < 2)
      return errorExpr(Clause.Loc, "cond clause needs a body");
    Expr E;
    E.K = ExprKind::If;
    E.Loc = Clause.Loc;
    E.Kids.push_back(parseExpr(Clause.Elems[0]));
    E.Kids.push_back(parseBody(Clause, 1, Clause.Loc));
    E.Kids.push_back(parseCondClauses(S, Index + 1));
    return P.addExpr(std::move(E));
  }

  ExprId parseAnd(const SExpr &S, size_t Index) {
    if (Index >= S.Elems.size()) {
      Expr E;
      E.K = ExprKind::Bool;
      E.Loc = S.Loc;
      E.BoolVal = true;
      return P.addExpr(std::move(E));
    }
    if (Index + 1 == S.Elems.size())
      return parseExpr(S.Elems[Index]);
    Expr E;
    E.K = ExprKind::If;
    E.Loc = S.Loc;
    E.Kids.push_back(parseExpr(S.Elems[Index]));
    E.Kids.push_back(parseAnd(S, Index + 1));
    Expr F;
    F.K = ExprKind::Bool;
    F.Loc = S.Loc;
    F.BoolVal = false;
    E.Kids.push_back(P.addExpr(std::move(F)));
    return P.addExpr(std::move(E));
  }

  /// (or a b ...) => (let ([t a]) (if t t (or b ...)))
  ExprId parseOr(const SExpr &S, size_t Index) {
    if (Index >= S.Elems.size()) {
      Expr E;
      E.K = ExprKind::Bool;
      E.Loc = S.Loc;
      E.BoolVal = false;
      return P.addExpr(std::move(E));
    }
    if (Index + 1 == S.Elems.size())
      return parseExpr(S.Elems[Index]);
    ExprId First = parseExpr(S.Elems[Index]);
    ScopeGuard Guard(*this);
    VarId Tmp = bindVar(P.Syms.fresh("or"), S.Loc, false);
    Expr Test;
    Test.K = ExprKind::Var;
    Test.Loc = S.Loc;
    Test.Var = Tmp;
    ExprId TestId = P.addExpr(Test);
    ExprId TestId2 = P.addExpr(Test);
    Expr If;
    If.K = ExprKind::If;
    If.Loc = S.Loc;
    If.Kids = {TestId, TestId2, parseOr(S, Index + 1)};
    ExprId IfId = P.addExpr(std::move(If));
    Expr Let;
    Let.K = ExprKind::Let;
    Let.Loc = S.Loc;
    Let.Bindings.push_back({Tmp, First});
    Let.Kids.push_back(IfId);
    return P.addExpr(std::move(Let));
  }

  ExprId parseWhenUnless(const SExpr &S, bool Negate) {
    if (S.Elems.size() < 3)
      return errorExpr(S.Loc, "malformed when/unless");
    Expr E;
    E.K = ExprKind::If;
    E.Loc = S.Loc;
    ExprId Test = parseExpr(S.Elems[1]);
    ExprId Body = parseBody(S, 2, S.Loc);
    ExprId Nothing = addVoid(S.Loc);
    if (Negate)
      E.Kids = {Test, Nothing, Body};
    else
      E.Kids = {Test, Body, Nothing};
    return P.addExpr(std::move(E));
  }

  ExprId parseUnary(const SExpr &S, ExprKind K, const char *Name) {
    if (S.Elems.size() != 2)
      return errorExpr(S.Loc, std::string("malformed ") + Name);
    Expr E;
    E.K = K;
    E.Loc = S.Loc;
    E.Kids.push_back(parseExpr(S.Elems[1]));
    return P.addExpr(std::move(E));
  }

  /// Quoted data becomes constructor expressions: symbols become Quote
  /// nodes, lists become nested cons applications, and self-evaluating
  /// atoms become their literal forms.
  ExprId parseQuote(const SExpr &S) {
    if (S.Elems.size() != 2)
      return errorExpr(S.Loc, "malformed quote");
    return quoteDatum(S.Elems[1]);
  }

  ExprId quoteDatum(const SExpr &Datum) {
    switch (Datum.K) {
    case SExpr::Kind::Symbol: {
      Expr E;
      E.K = ExprKind::Quote;
      E.Loc = Datum.Loc;
      E.Name = Datum.Sym;
      return P.addExpr(std::move(E));
    }
    case SExpr::Kind::List: {
      if (Datum.Elems.empty()) {
        Expr E;
        E.K = ExprKind::Nil;
        E.Loc = Datum.Loc;
        return P.addExpr(std::move(E));
      }
      // Build (cons head (quote rest)) right to left.
      Expr Nil;
      Nil.K = ExprKind::Nil;
      Nil.Loc = Datum.Loc;
      ExprId Acc = P.addExpr(std::move(Nil));
      for (size_t I = Datum.Elems.size(); I-- > 0;) {
        Expr Cons;
        Cons.K = ExprKind::PrimApp;
        Cons.PrimOp = Prim::Cons;
        Cons.Loc = Datum.Loc;
        Cons.Kids = {quoteDatum(Datum.Elems[I]), Acc};
        Acc = P.addExpr(std::move(Cons));
      }
      return Acc;
    }
    default:
      return parseExpr(Datum);
    }
  }

  //===--------------------------------------------------------------------===
  // Units (§3.6).
  //===--------------------------------------------------------------------===

  /// (unit (import w?) (export z) (define ...) ... body...)
  ExprId parseUnit(const SExpr &S) {
    ScopeGuard Guard(*this);
    Expr U;
    U.K = ExprKind::Unit;
    U.Loc = S.Loc;

    size_t Index = 1;
    VarId ImportVar = NoVar;
    Symbol ExportName = InvalidSymbol;
    SourceLoc ExportLoc = S.Loc;

    // Import clause.
    if (Index < S.Elems.size() && S.Elems[Index].isList() &&
        !S.Elems[Index].Elems.empty() && S.Elems[Index].Elems[0].isSymbol() &&
        keywordOf(S.Elems[Index].Elems[0].Sym) == Keyword::Import) {
      const SExpr &Imp = S.Elems[Index];
      if (Imp.Elems.size() == 2 && Imp.Elems[1].isSymbol()) {
        ImportVar = bindVar(Imp.Elems[1].Sym, Imp.Loc, /*Assignable=*/true);
      } else if (Imp.Elems.size() != 1) {
        return errorExpr(Imp.Loc, "malformed import clause");
      }
      ++Index;
    }
    if (ImportVar == NoVar)
      ImportVar = bindVar(P.Syms.fresh("import"), S.Loc, true);

    // Export clause.
    if (Index < S.Elems.size() && S.Elems[Index].isList() &&
        !S.Elems[Index].Elems.empty() && S.Elems[Index].Elems[0].isSymbol() &&
        keywordOf(S.Elems[Index].Elems[0].Sym) == Keyword::Export) {
      const SExpr &Exp = S.Elems[Index];
      if (Exp.Elems.size() != 2 || !Exp.Elems[1].isSymbol())
        return errorExpr(Exp.Loc, "malformed export clause");
      ExportName = Exp.Elems[1].Sym;
      ExportLoc = Exp.Loc;
      ++Index;
    }

    // Defines: bind all names first (letrec scope).
    std::vector<const SExpr *> Defines;
    std::vector<const SExpr *> Bodies;
    for (; Index < S.Elems.size(); ++Index) {
      const SExpr &Form = S.Elems[Index];
      if (isDefineForm(Form))
        Defines.push_back(&Form);
      else
        Bodies.push_back(&Form);
    }
    std::vector<VarId> DefVars;
    for (const SExpr *D : Defines) {
      Symbol Name = definedName(*D);
      if (Name == InvalidSymbol)
        return errorExpr(D->Loc, "malformed define in unit");
      DefVars.push_back(bindVar(Name, D->Loc, /*Assignable=*/true));
    }
    for (size_t I = 0; I < Defines.size(); ++I) {
      const SExpr &D = *Defines[I];
      ExprId Init;
      if (D.Elems[1].isSymbol()) {
        if (D.Elems.size() != 3)
          return errorExpr(D.Loc, "define expects one body expression");
        Init = parseExpr(D.Elems[2]);
      } else {
        Init = parseLambdaTail(D.Elems[1], D, 2, D.Loc);
      }
      U.Bindings.push_back({DefVars[I], Init});
    }

    // Export must name the import or a define.
    VarId ExportVar = NoVar;
    if (ExportName != InvalidSymbol) {
      ExportVar = lookupVar(ExportName);
      if (ExportVar == NoVar)
        return errorExpr(ExportLoc, "export of unbound unit variable");
    } else {
      ExportVar = bindVar(P.Syms.fresh("export"), S.Loc, true);
    }

    // Body.
    ExprId Body;
    if (Bodies.empty()) {
      Body = addVoid(S.Loc);
    } else if (Bodies.size() == 1) {
      Body = parseExpr(*Bodies[0]);
    } else {
      Expr Seq;
      Seq.K = ExprKind::Begin;
      Seq.Loc = S.Loc;
      for (const SExpr *B : Bodies)
        Seq.Kids.push_back(parseExpr(*B));
      Body = P.addExpr(std::move(Seq));
    }

    U.Params = {ImportVar, ExportVar};
    U.Kids.push_back(Body);
    return P.addExpr(std::move(U));
  }

  ExprId parseLink(const SExpr &S) {
    if (S.Elems.size() != 3)
      return errorExpr(S.Loc, "malformed link");
    Expr E;
    E.K = ExprKind::Link;
    E.Loc = S.Loc;
    E.Kids = {parseExpr(S.Elems[1]), parseExpr(S.Elems[2])};
    return P.addExpr(std::move(E));
  }

  ExprId parseInvoke(const SExpr &S) {
    if (S.Elems.size() != 3 || !S.Elems[2].isSymbol())
      return errorExpr(S.Loc, "malformed invoke");
    VarId V = lookupVar(S.Elems[2].Sym);
    if (V == NoVar)
      return errorExpr(S.Loc, "invoke with unbound variable '" +
                                  P.Syms.name(S.Elems[2].Sym) + "'");
    if (!P.var(V).Assignable)
      return errorExpr(S.Loc, "invoke requires an assignable variable");
    Expr E;
    E.K = ExprKind::Invoke;
    E.Loc = S.Loc;
    E.Var = V;
    E.Kids.push_back(parseExpr(S.Elems[1]));
    return P.addExpr(std::move(E));
  }

  //===--------------------------------------------------------------------===
  // Classes (§3.7).
  //===--------------------------------------------------------------------===

  ExprId makeBaseClass(SourceLoc Loc) {
    Expr E;
    E.K = ExprKind::Class;
    E.Loc = Loc;
    // No super (Kids empty), no instance variables: the root class.
    return P.addExpr(std::move(E));
  }

  /// (class N (z1 ... zk) [zk+1 V] ...)
  ExprId parseClass(const SExpr &S) {
    if (S.Elems.size() < 3 || !S.Elems[2].isList())
      return errorExpr(S.Loc, "malformed class");
    ExprId Super = parseExpr(S.Elems[1]);
    ScopeGuard Guard(*this);
    Expr C;
    C.K = ExprKind::Class;
    C.Loc = S.Loc;
    C.Kids.push_back(Super);
    // Inherited instance variables.
    for (const SExpr &Z : S.Elems[2].Elems) {
      if (!Z.isSymbol())
        return errorExpr(Z.Loc, "instance variable must be an identifier");
      C.Params.push_back(bindVar(Z.Sym, Z.Loc, /*Assignable=*/true));
    }
    // New instance variables: bind all names first, then initializers
    // (all instance variables are in scope in every initializer, fig 3.7).
    std::vector<VarId> NewVars;
    for (size_t I = 3; I < S.Elems.size(); ++I) {
      const SExpr &Pair = S.Elems[I];
      if (!Pair.isList() || Pair.Elems.size() != 2 ||
          !Pair.Elems[0].isSymbol())
        return errorExpr(Pair.Loc, "expected [ivar init] clause");
      NewVars.push_back(
          bindVar(Pair.Elems[0].Sym, Pair.Elems[0].Loc, /*Assignable=*/true));
    }
    for (size_t I = 3; I < S.Elems.size(); ++I) {
      const SExpr &Pair = S.Elems[I];
      C.Bindings.push_back({NewVars[I - 3], parseExpr(Pair.Elems[1])});
    }
    return P.addExpr(std::move(C));
  }

  /// (: e T) — a type assertion (App. D.5.1). T is the kind-level
  /// fragment of the type language: a kind name or (union T ...).
  ExprId parseTypeAssert(const SExpr &S) {
    if (S.Elems.size() != 3)
      return errorExpr(S.Loc, "malformed type assertion (: e T)");
    KindMask Mask = 0;
    if (!parseTypeSyntax(S.Elems[2], Mask))
      return errorExpr(S.Elems[2].Loc, "unknown type in assertion");
    Expr E;
    E.K = ExprKind::TypeAssert;
    E.Loc = S.Loc;
    E.Mask = Mask;
    E.Kids.push_back(parseExpr(S.Elems[1]));
    return P.addExpr(std::move(E));
  }

  bool parseTypeSyntax(const SExpr &T, KindMask &Mask) {
    if (T.isSymbol()) {
      const std::string &Name = P.Syms.name(T.Sym);
      if (Name == "num")
        Mask |= kindBit(ConstKind::Num);
      else if (Name == "str")
        Mask |= kindBit(ConstKind::Str);
      else if (Name == "sym")
        Mask |= kindBit(ConstKind::Sym);
      else if (Name == "char")
        Mask |= kindBit(ConstKind::Char);
      else if (Name == "bool")
        Mask |= kindBit(ConstKind::True) | kindBit(ConstKind::False);
      else if (Name == "nil")
        Mask |= kindBit(ConstKind::Nil);
      else if (Name == "void")
        Mask |= kindBit(ConstKind::Void);
      else if (Name == "eof")
        Mask |= kindBit(ConstKind::Eof);
      else if (Name == "pair")
        Mask |= kindBit(ConstKind::Pair);
      else if (Name == "box")
        Mask |= kindBit(ConstKind::BoxTag);
      else if (Name == "vec")
        Mask |= kindBit(ConstKind::VecTag);
      else if (Name == "fn")
        Mask |= kindBit(ConstKind::FnTag) | kindBit(ConstKind::ContTag);
      else if (Name == "unit")
        Mask |= kindBit(ConstKind::UnitTag);
      else if (Name == "class")
        Mask |= kindBit(ConstKind::ClassTag);
      else if (Name == "obj")
        Mask |= kindBit(ConstKind::ObjTag);
      else if (Name == "struct")
        Mask |= kindBit(ConstKind::StructTag);
      else if (Name == "any")
        Mask |= ValidKindMask;
      else
        return false;
      return true;
    }
    if (T.isList() && !T.Elems.empty() && T.Elems[0].isSymbol() &&
        P.Syms.name(T.Elems[0].Sym) == "union") {
      for (size_t I = 1; I < T.Elems.size(); ++I)
        if (!parseTypeSyntax(T.Elems[I], Mask))
          return false;
      return true;
    }
    return false;
  }

  ExprId parseIvarRef(const SExpr &S) {
    if (S.Elems.size() != 3 || !S.Elems[2].isSymbol())
      return errorExpr(S.Loc, "malformed ivar");
    Expr E;
    E.K = ExprKind::IvarRef;
    E.Loc = S.Loc;
    E.Name = S.Elems[2].Sym;
    E.Kids.push_back(parseExpr(S.Elems[1]));
    return P.addExpr(std::move(E));
  }

  ExprId parseIvarSet(const SExpr &S) {
    if (S.Elems.size() != 4 || !S.Elems[2].isSymbol())
      return errorExpr(S.Loc, "malformed set-ivar!");
    Expr E;
    E.K = ExprKind::IvarSet;
    E.Loc = S.Loc;
    E.Name = S.Elems[2].Sym;
    E.Kids = {parseExpr(S.Elems[1]), parseExpr(S.Elems[3])};
    return P.addExpr(std::move(E));
  }

  Program &P;
  DiagnosticEngine &Diags;
  std::unordered_map<Symbol, Keyword> Keywords;
  std::unordered_map<Symbol, VarId> Globals;
  std::unordered_map<Symbol, StructOpInfo> StructOps;
  std::vector<Scope> Scopes;
  uint32_t CurrentComponent = 0;
};

} // namespace

bool spidey::parseProgram(Program &P, DiagnosticEngine &Diags,
                          const std::vector<SourceFile> &Files) {
  assert(P.Components.empty() && "program must be empty");
  return ParserImpl(P, Diags).run(Files);
}

bool spidey::parseSource(Program &P, DiagnosticEngine &Diags,
                         std::string_view Source, std::string Name) {
  std::vector<SourceFile> Files;
  Files.push_back({std::move(Name), std::string(Source)});
  return parseProgram(P, Diags, Files);
}
