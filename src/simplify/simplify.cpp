//===-- simplify/simplify.cpp ---------------------------------*- C++ -*-===//

#include "simplify/simplify.h"

#include "rtg/grammar.h"
#include "support/flathash.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

using namespace spidey;

namespace {

/// A mutable, flat view of a constraint system, convenient for the
/// rewriting the simplification algorithms perform.
struct FlatConstraint {
  enum class Kind : uint8_t { ConstLB, SelLB, VarUB, SelUB, FilterUB };
  Kind K;
  SetVar A = NoSetVar; ///< the bounded variable
  Constant C = 0;
  Selector S = 0;
  SetVar B = NoSetVar;

  auto key() const {
    return std::make_tuple(static_cast<uint8_t>(K), A, S,
                           K == Kind::ConstLB ? C : B);
  }
};

using ConstraintKey = std::tuple<uint8_t, SetVar, Selector, uint32_t>;

std::vector<FlatConstraint> flatten(const ConstraintSystem &S) {
  std::vector<FlatConstraint> Out;
  Out.reserve(S.size());
  for (SetVar A : S.variables()) {
    for (const LowerBound &L : S.lowerBounds(A)) {
      if (L.K == LowerBound::Kind::ConstLB)
        Out.push_back({FlatConstraint::Kind::ConstLB, A, L.C, 0, NoSetVar});
      else
        Out.push_back({FlatConstraint::Kind::SelLB, A, 0, L.Sel, L.Other});
    }
    for (const UpperBound &U : S.upperBounds(A)) {
      if (U.K == UpperBound::Kind::VarUB)
        Out.push_back({FlatConstraint::Kind::VarUB, A, 0, 0, U.Other});
      else if (U.K == UpperBound::Kind::FilterUB)
        Out.push_back({FlatConstraint::Kind::FilterUB, A, 0, U.Sel, U.Other});
      else
        Out.push_back({FlatConstraint::Kind::SelUB, A, 0, U.Sel, U.Other});
    }
  }
  return Out;
}

ConstraintSystem unflatten(ConstraintContext &Ctx,
                           const std::vector<FlatConstraint> &Cs) {
  ConstraintSystem S(Ctx);
  for (const FlatConstraint &C : Cs) {
    switch (C.K) {
    case FlatConstraint::Kind::ConstLB:
      S.addConstLowerRaw(C.A, C.C);
      break;
    case FlatConstraint::Kind::SelLB:
      S.addSelLowerRaw(C.A, C.S, C.B);
      break;
    case FlatConstraint::Kind::VarUB:
      S.addVarUpperRaw(C.A, C.B);
      break;
    case FlatConstraint::Kind::SelUB:
      S.addSelUpperRaw(C.A, C.S, C.B);
      break;
    case FlatConstraint::Kind::FilterUB:
      S.addFilterUpperRaw(C.A, C.S, C.B);
      break;
    }
  }
  return S;
}

//===----------------------------------------------------------------------===
// Empty-constraint simplification (§6.4.1).
//===----------------------------------------------------------------------===

/// A constraint is kept iff at least one of its induced grammar
/// productions mentions only non-empty non-terminals.
bool keepNonEmpty(const FlatConstraint &C, const Grammar &G) {
  NT AL{C.A, false}, AU{C.A, true};
  switch (C.K) {
  case FlatConstraint::Kind::ConstLB:
    // R → [c ≤ αU].
    return G.nonempty(AU);
  case FlatConstraint::Kind::VarUB:
    // αU → βU and βL → αL.
    return G.nonempty(NT{C.B, true}) || G.nonempty(AL);
  case FlatConstraint::Kind::SelLB:
    // monotone [β ≤ s(α)]: βU → s(αU); anti [s(α) ≤ β]: βL → s(αU).
    return G.nonempty(AU);
  case FlatConstraint::Kind::SelUB:
    // monotone [s(α) ≤ β]: βL → s(αL); anti [β ≤ s(α)]: βU → s(αL).
    return G.nonempty(AL);
  case FlatConstraint::Kind::FilterUB:
    // βL → %filter(αL).
    return G.nonempty(AL);
  }
  return true;
}

//===----------------------------------------------------------------------===
// Unreachable-constraint simplification (§6.4.2).
//===----------------------------------------------------------------------===

std::vector<uint8_t> computeReachable(const Grammar &G) {
  // Dense bitmap over the grammar's non-terminal ids (every marked NT is
  // in the grammar by construction).
  std::vector<uint8_t> Reachable(G.numNonterminals(), 0);
  std::vector<NT> Work;
  auto Mark = [&](NT X) {
    uint32_t Id = G.ntId(X);
    if (Id != Grammar::NoId && !Reachable[Id]) {
      Reachable[Id] = 1;
      Work.push_back(X);
    }
  };
  // Seeds: R → [γL ≤ γU] contributes each side when the partner side can
  // produce a word; R → [c ≤ ωU] contributes ωU unconditionally.
  for (SetVar V : G.rootVars()) {
    NT L{V, false}, U{V, true};
    if (G.nonempty(L))
      Mark(U);
    if (G.nonempty(U))
      Mark(L);
  }
  for (const auto &[C, V] : G.rootConsts()) {
    (void)C;
    Mark(NT{V, true});
  }
  while (!Work.empty()) {
    NT X = Work.back();
    Work.pop_back();
    for (const Prod &P : G.prods(X))
      if (P.K == Prod::Kind::Sel)
        Mark(P.Target);
    for (NT T : G.epsTargets(X))
      Mark(T);
  }
  return Reachable;
}

bool keepReachable(const FlatConstraint &C, const Grammar &G,
                   const std::vector<uint8_t> &Reachable) {
  auto R = [&](NT X) {
    uint32_t Id = G.ntId(X);
    return Id != Grammar::NoId && Reachable[Id];
  };
  NT AL{C.A, false}, AU{C.A, true};
  switch (C.K) {
  case FlatConstraint::Kind::ConstLB:
    return R(AU);
  case FlatConstraint::Kind::VarUB:
    // αU → βU is useful if αU is reachable and βU productive; dually for
    // βL → αL.
    return (R(AU) && G.nonempty(NT{C.B, true})) ||
           (R(NT{C.B, false}) && G.nonempty(AL));
  case FlatConstraint::Kind::SelLB:
    // Productions βU → s(αU) (mono) / βL → s(αU) (anti): LHS is the B
    // side.
    return G.context().Selectors.isMonotone(C.S)
               ? (R(NT{C.B, true}) && G.nonempty(AU))
               : (R(NT{C.B, false}) && G.nonempty(AU));
  case FlatConstraint::Kind::SelUB:
    // βL → s(αL) (mono) / βU → s(αL) (anti).
    return G.context().Selectors.isMonotone(C.S)
               ? (R(NT{C.B, false}) && G.nonempty(AL))
               : (R(NT{C.B, true}) && G.nonempty(AL));
  case FlatConstraint::Kind::FilterUB:
    return R(NT{C.B, false}) && G.nonempty(AL);
  }
  return true;
}

//===----------------------------------------------------------------------===
// ε-removal (§6.4.3).
//===----------------------------------------------------------------------===

/// Applies the two ε-merging rules of §6.4.3 to a fixed point.
///
/// Rule 1: if α ∉ E and the ε-constraint [α ≤ β] is α's only "outflow"
/// (no other α ≤ τ, s⁺(α) ≤ γ, or γ ≤ s⁻(α)), replace α by β.
/// Rule 2 (dual): if β ∉ E and [α ≤ β] is β's only "inflow" (no other
/// c ≤ β, τ ≤ β), replace β by α.
///
/// Candidates are applied in non-overlapping batches per pass.
std::vector<FlatConstraint>
removeEpsilon(std::vector<FlatConstraint> Cs, const SelectorTable &Sels,
              const std::vector<SetVar> &External) {
  // Dense variable index (direct-mapped: set variables are small dense
  // integers). Merges only ever substitute one existing variable for
  // another, so the index built from the initial system covers every
  // pass; per-constraint ids are cached alongside Cs and rewritten in
  // place during each rebuild, making the per-pass work pure array
  // arithmetic.
  constexpr uint32_t NoIdx = ~0u;
  SetVar MaxV = 0;
  for (const FlatConstraint &C : Cs) {
    MaxV = std::max(MaxV, C.A);
    if (C.K != FlatConstraint::Kind::ConstLB)
      MaxV = std::max(MaxV, C.B);
  }
  std::vector<uint32_t> Idx(Cs.empty() ? 0 : size_t(MaxV) + 1, NoIdx);
  uint32_t N = 0;
  auto InternVar = [&](SetVar V) {
    uint32_t &Slot = Idx[V];
    if (Slot == NoIdx)
      Slot = N++;
    return Slot;
  };
  std::vector<uint32_t> IdA(Cs.size()), IdB(Cs.size());
  for (size_t I = 0; I < Cs.size(); ++I) {
    IdA[I] = InternVar(Cs[I].A);
    IdB[I] = Cs[I].K != FlatConstraint::Kind::ConstLB ? InternVar(Cs[I].B)
                                                      : 0;
  }
  std::vector<uint8_t> IsExt(N, 0);
  for (SetVar V : External)
    if (V < Idx.size() && Idx[V] != NoIdx)
      IsExt[Idx[V]] = 1;

  std::vector<uint32_t> Outflow(N), Inflow(N);
  std::vector<uint8_t> Involved(N);
  std::vector<uint32_t> SubstId(N);
  std::vector<SetVar> SubstVar(N);

  StampedPairSet Seen;

  for (;;) {
    std::fill(Outflow.begin(), Outflow.end(), 0);
    std::fill(Inflow.begin(), Inflow.end(), 0);
    for (size_t I = 0; I < Cs.size(); ++I) {
      const FlatConstraint &C = Cs[I];
      switch (C.K) {
      case FlatConstraint::Kind::ConstLB:
        ++Inflow[IdA[I]];
        break;
      case FlatConstraint::Kind::VarUB:
        ++Outflow[IdA[I]];
        ++Inflow[IdB[I]];
        break;
      case FlatConstraint::Kind::SelLB:
        // mono: [β ≤ s(α)] is an outflow of β (β ≤ τ form);
        // anti: [s(α) ≤ β] is an inflow of β (τ ≤ β form).
        if (Sels.isMonotone(C.S))
          ++Outflow[IdB[I]];
        else
          ++Inflow[IdB[I]];
        break;
      case FlatConstraint::Kind::SelUB:
        // mono: [s(α) ≤ β]: outflow of α, inflow of β;
        // anti: [β ≤ s(α)]: outflow of α and of β.
        ++Outflow[IdA[I]];
        if (Sels.isMonotone(C.S))
          ++Inflow[IdB[I]];
        else
          ++Outflow[IdB[I]];
        break;
      case FlatConstraint::Kind::FilterUB:
        // A conditional α ≤_M β: outflow of α, inflow of β.
        ++Outflow[IdA[I]];
        ++Inflow[IdB[I]];
        break;
      }
    }

    // Gather a batch of non-overlapping merges.
    std::fill(Involved.begin(), Involved.end(), 0);
    for (uint32_t I = 0; I < N; ++I)
      SubstId[I] = I;
    bool Any = false;
    for (size_t I = 0; I < Cs.size(); ++I) {
      const FlatConstraint &C = Cs[I];
      if (C.K != FlatConstraint::Kind::VarUB || C.A == C.B)
        continue;
      uint32_t A = IdA[I], B = IdB[I];
      if (Involved[A] || Involved[B])
        continue;
      if (!IsExt[A] && Outflow[A] == 1) {
        SubstId[A] = B; // α := β
        SubstVar[A] = C.B;
        Involved[A] = Involved[B] = 1;
        Any = true;
        continue;
      }
      if (!IsExt[B] && Inflow[B] == 1) {
        SubstId[B] = A; // β := α
        SubstVar[B] = C.A;
        Involved[A] = Involved[B] = 1;
        Any = true;
      }
    }
    if (!Any)
      return Cs;

    std::vector<FlatConstraint> Next;
    std::vector<uint32_t> NextIdA, NextIdB;
    Next.reserve(Cs.size());
    NextIdA.reserve(Cs.size());
    NextIdB.reserve(Cs.size());
    Seen.clear();
    for (size_t I = 0; I < Cs.size(); ++I) {
      FlatConstraint C = Cs[I];
      uint32_t A = IdA[I], B = IdB[I];
      if (SubstId[A] != A) {
        C.A = SubstVar[A];
        A = SubstId[A];
      }
      if (C.K != FlatConstraint::Kind::ConstLB && SubstId[B] != B) {
        C.B = SubstVar[B];
        B = SubstId[B];
      }
      if (C.K == FlatConstraint::Kind::VarUB && A == B)
        continue;
      uint64_t Hi = (uint64_t(static_cast<uint8_t>(C.K)) << 32) | A;
      uint64_t Lo =
          (uint64_t(C.S) << 32) |
          (C.K == FlatConstraint::Kind::ConstLB ? uint64_t(C.C)
                                                : uint64_t(B));
      if (!Seen.insert(Hi, Lo))
        continue;
      Next.push_back(C);
      NextIdA.push_back(A);
      NextIdB.push_back(B);
    }
    Cs = std::move(Next);
    IdA = std::move(NextIdA);
    IdB = std::move(NextIdB);
  }
}

//===----------------------------------------------------------------------===
// Hopcroft-style partition merging (§6.4.4, fig. 6.5).
//===----------------------------------------------------------------------===

std::vector<FlatConstraint>
hopcroftMerge(std::vector<FlatConstraint> Cs, const SelectorTable &Sels,
              const std::unordered_set<SetVar> &External) {
  std::set<SetVar> VarSet;
  for (const FlatConstraint &C : Cs) {
    VarSet.insert(C.A);
    if (C.K != FlatConstraint::Kind::ConstLB)
      VarSet.insert(C.B);
  }
  std::vector<SetVar> Vars(VarSet.begin(), VarSet.end());

  // External variables must keep their identity, and variables touching
  // anti-monotone selector constraints are pinned to singleton classes:
  // this enforces the ∀-conditions of fig. 6.5 for anti-monotone
  // selectors strictly (sound, if conservative).
  std::unordered_set<SetVar> Pinned(External.begin(), External.end());
  for (const FlatConstraint &C : Cs) {
    if ((C.K == FlatConstraint::Kind::SelLB ||
         C.K == FlatConstraint::Kind::SelUB) &&
        !Sels.isMonotone(C.S)) {
      Pinned.insert(C.A);
      Pinned.insert(C.B);
    }
    if (C.K == FlatConstraint::Kind::FilterUB) {
      Pinned.insert(C.A);
      Pinned.insert(C.B);
    }
  }

  // Initial partition: pinned variables are singletons; the rest are
  // grouped by their constant lower-bound sets.
  std::unordered_map<SetVar, uint32_t> ClassOf;
  uint32_t NextClass = 0;
  {
    std::unordered_map<SetVar, std::vector<Constant>> Consts;
    for (const FlatConstraint &C : Cs)
      if (C.K == FlatConstraint::Kind::ConstLB)
        Consts[C.A].push_back(C.C);
    std::map<std::vector<Constant>, uint32_t> ByConsts;
    for (SetVar V : Vars) {
      if (Pinned.count(V)) {
        ClassOf[V] = NextClass++;
        continue;
      }
      std::vector<Constant> Key = Consts[V];
      std::sort(Key.begin(), Key.end());
      auto [It, New] = ByConsts.emplace(std::move(Key), NextClass);
      if (New)
        ++NextClass;
      ClassOf[V] = It->second;
    }
  }

  // Moore refinement: split classes whose members carry different
  // class-level constraint signatures (the ∃-conditions of fig. 6.5,
  // applied symmetrically).
  for (;;) {
    std::unordered_map<SetVar, std::vector<uint64_t>> Sig;
    auto Tok = [&](uint64_t Kind, uint64_t Sel, uint32_t Cls) {
      return (Kind << 56) | (Sel << 32) | Cls;
    };
    for (const FlatConstraint &C : Cs) {
      switch (C.K) {
      case FlatConstraint::Kind::ConstLB:
        break; // encoded in the initial partition
      case FlatConstraint::Kind::VarUB:
        Sig[C.A].push_back(Tok(1, 0, ClassOf[C.B]));
        Sig[C.B].push_back(Tok(2, 0, ClassOf[C.A]));
        break;
      case FlatConstraint::Kind::SelLB:
        Sig[C.A].push_back(Tok(3, C.S, ClassOf[C.B]));
        Sig[C.B].push_back(Tok(4, C.S, ClassOf[C.A]));
        break;
      case FlatConstraint::Kind::SelUB:
        Sig[C.A].push_back(Tok(5, C.S, ClassOf[C.B]));
        Sig[C.B].push_back(Tok(6, C.S, ClassOf[C.A]));
        break;
      case FlatConstraint::Kind::FilterUB:
        Sig[C.A].push_back(Tok(7, C.S, ClassOf[C.B]));
        Sig[C.B].push_back(Tok(8, C.S, ClassOf[C.A]));
        break;
      }
    }
    std::map<std::pair<uint32_t, std::vector<uint64_t>>, uint32_t> Regroup;
    std::unordered_map<SetVar, uint32_t> NewClassOf;
    uint32_t NewNext = 0;
    for (SetVar V : Vars) {
      std::vector<uint64_t> &S = Sig[V];
      std::sort(S.begin(), S.end());
      S.erase(std::unique(S.begin(), S.end()), S.end());
      auto [It, New] =
          Regroup.emplace(std::make_pair(ClassOf[V], std::move(S)), NewNext);
      if (New)
        ++NewNext;
      NewClassOf[V] = It->second;
    }
    bool Changed = NewNext != NextClass;
    ClassOf = std::move(NewClassOf);
    NextClass = NewNext;
    if (!Changed)
      break;
  }

  // Representative per class (deterministic: smallest variable).
  std::unordered_map<uint32_t, SetVar> Rep;
  for (SetVar V : Vars) {
    auto [It, New] = Rep.emplace(ClassOf[V], V);
    if (!New && V < It->second)
      It->second = V;
  }
  auto RepOf = [&](SetVar V) { return Rep.at(ClassOf.at(V)); };

  std::vector<FlatConstraint> Next;
  std::set<ConstraintKey> Seen;
  for (FlatConstraint C : Cs) {
    C.A = RepOf(C.A);
    if (C.K != FlatConstraint::Kind::ConstLB)
      C.B = RepOf(C.B);
    if (C.K == FlatConstraint::Kind::VarUB && C.A == C.B)
      continue;
    if (Seen.insert(C.key()).second)
      Next.push_back(C);
  }
  return Next;
}

} // namespace

const char *spidey::simplifyAlgorithmName(SimplifyAlgorithm Alg) {
  switch (Alg) {
  case SimplifyAlgorithm::None:
    return "none";
  case SimplifyAlgorithm::Empty:
    return "empty";
  case SimplifyAlgorithm::Unreachable:
    return "unreachable";
  case SimplifyAlgorithm::EpsilonRemoval:
    return "e-removal";
  case SimplifyAlgorithm::Hopcroft:
    return "hopcroft";
  }
  return "?";
}

ConstraintSystem spidey::simplifyConstraints(const ConstraintSystem &S,
                                             const std::vector<SetVar> &E,
                                             SimplifyAlgorithm Alg) {
  ConstraintContext &Ctx = S.context();
  std::vector<FlatConstraint> Cs = flatten(S);
  if (Alg == SimplifyAlgorithm::None)
    return unflatten(Ctx, Cs);

  Grammar G(S, E);

  // Level 1: empty.
  {
    std::vector<FlatConstraint> Kept;
    for (const FlatConstraint &C : Cs)
      if (keepNonEmpty(C, G))
        Kept.push_back(C);
    Cs = std::move(Kept);
  }
  if (Alg == SimplifyAlgorithm::Empty)
    return unflatten(Ctx, Cs);

  // Level 2: unreachable.
  {
    auto Reachable = computeReachable(G);
    std::vector<FlatConstraint> Kept;
    for (const FlatConstraint &C : Cs)
      if (keepReachable(C, G, Reachable))
        Kept.push_back(C);
    Cs = std::move(Kept);
  }
  if (Alg == SimplifyAlgorithm::Unreachable)
    return unflatten(Ctx, Cs);

  // Level 3: ε-removal.
  Cs = removeEpsilon(std::move(Cs), Ctx.Selectors, E);
  if (Alg == SimplifyAlgorithm::EpsilonRemoval)
    return unflatten(Ctx, Cs);

  // Level 4: Hopcroft.
  std::unordered_set<SetVar> External(E.begin(), E.end());
  Cs = hopcroftMerge(std::move(Cs), Ctx.Selectors, External);
  return unflatten(Ctx, Cs);
}
