//===-- simplify/simplify.h - Constraint simplification --------*- C++ -*-===//
///
/// \file
/// The practical constraint-simplification algorithms of §6.4. Given a
/// constraint system S (closed under Θ) and its external variables E, each
/// algorithm produces a smaller system observably equivalent to S with
/// respect to E (S ≅E simplify(S)):
///
///   - Empty (§6.4.1): drops constraints all of whose induced grammar
///     productions mention empty non-terminals.
///   - Unreachable (§6.4.2): additionally drops constraints whose induced
///     productions cannot occur in any constraint of Π(S)|E.
///   - EpsilonRemoval (§6.4.3): additionally merges variables linked by an
///     ε-constraint that is the sole outflow (dually: sole inflow).
///   - Hopcroft (§6.4.4): additionally merges variables in the equivalence
///     classes of a Moore/Hopcroft-style partition refinement satisfying
///     the conditions of fig. 6.5.
///
/// Each level includes all previous levels, as in the paper's benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_SIMPLIFY_SIMPLIFY_H
#define SPIDEY_SIMPLIFY_SIMPLIFY_H

#include "constraints/constraint_system.h"

#include <vector>

namespace spidey {

enum class SimplifyAlgorithm : uint8_t {
  None,
  Empty,
  Unreachable,
  EpsilonRemoval,
  Hopcroft,
};

const char *simplifyAlgorithmName(SimplifyAlgorithm Alg);

/// Simplifies \p S (which must be closed under Θ) with respect to the
/// external variables \p E. The result is *not* closed; it is the compact
/// form suitable for constraint files and schema duplication.
ConstraintSystem simplifyConstraints(const ConstraintSystem &S,
                                     const std::vector<SetVar> &E,
                                     SimplifyAlgorithm Alg);

} // namespace spidey

#endif // SPIDEY_SIMPLIFY_SIMPLIFY_H
