//===-- rtg/grammar.h - Regular (tree) grammars ----------------*- C++ -*-===//
///
/// \file
/// The regular grammar Gr(S,E) of Definition 6.3.1 and its regular-tree
/// extension Gt(S,E) of Definition 6.3.3, generalized over the selector
/// signature.
///
/// For each set variable α the grammar has non-terminals αL and αU
/// generating the non-constant lower and upper bounds of α in Π(S)|E:
///
///   αU → α, αL → α                            for α ∈ E
///   αU → βU,        βL → αL                   for [α ≤ β] ∈ S
///   αU → s(βU)      for [α ≤ s(β)] ∈ S        (monotone s)
///   βL → s(αL)      for [s(α) ≤ β] ∈ S        (monotone s)
///   αU → s(βL)      for [α ≤ s(β)] ∈ S        (anti-monotone s)
///   βL → s(αU)      for [s(α) ≤ β] ∈ S        (anti-monotone s)
///
/// The tree extension adds the root productions
///   R → [αL ≤ αU]   for every α in S, and
///   R → [c ≤ αU]    for every [c ≤ α] ∈ S.
///
/// A "word" of a non-terminal is a selector string followed by an external
/// variable: s1(s2(...(α))). The grammar is also the NFA over the alphabet
/// Selectors ∪ E used by the containment and entailment algorithms.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_RTG_GRAMMAR_H
#define SPIDEY_RTG_GRAMMAR_H

#include "constraints/constraint_system.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace spidey {

/// A non-terminal: a set variable tagged with its side.
struct NT {
  SetVar Var = NoSetVar;
  bool Upper = false;

  friend bool operator==(NT A, NT B) {
    return A.Var == B.Var && A.Upper == B.Upper;
  }
  uint64_t key() const { return (uint64_t(Var) << 1) | (Upper ? 1 : 0); }
};

/// A production right-hand side after ε-removal: either a terminal
/// external variable, or a selector applied to a non-terminal.
struct Prod {
  enum class Kind : uint8_t { Term, Sel };
  Kind K = Kind::Term;
  SetVar TermVar = NoSetVar; ///< Kind::Term
  Selector S = 0;            ///< Kind::Sel
  NT Target;                 ///< Kind::Sel
};

/// Gr(S,E) / Gt(S,E) with ε-productions removed.
class Grammar {
public:
  /// Builds the grammar from a (closed) simple constraint system and the
  /// external variable set E.
  Grammar(const ConstraintSystem &S, const std::vector<SetVar> &E);

  const ConstraintContext &context() const { return *Ctx; }

  /// ε-free productions of a non-terminal.
  const std::vector<Prod> &prods(NT X) const {
    static const std::vector<Prod> Empty;
    uint32_t Id = ntId(X);
    return Id == NoId ? Empty : DenseProds[Id];
  }

  /// Root productions R → [γL ≤ γU] (one per variable of S).
  const std::vector<SetVar> &rootVars() const { return RootVars; }
  /// Root productions R → [c ≤ ωU].
  const std::vector<std::pair<Constant, SetVar>> &rootConsts() const {
    return RootConsts;
  }

  /// True if L(X) is non-empty.
  bool nonempty(NT X) const {
    uint32_t Id = ntId(X);
    return Id != NoId && NonemptyBit[Id];
  }

  /// Unit (ε) production targets of X from the pre-elimination grammar,
  /// needed for faithful reachability computations (§6.4.2).
  const std::vector<NT> &epsTargets(NT X) const {
    static const std::vector<NT> Empty;
    uint32_t Id = ntId(X);
    return Id == NoId ? Empty : DenseEps[Id];
  }

  /// All variables mentioned by the underlying system.
  const std::vector<SetVar> &variables() const { return Vars; }

  bool isExternal(SetVar V) const { return External.count(V) != 0; }

private:
  static constexpr uint32_t NoId = ~0u;

  /// Dense non-terminal index: 2 * position-of-Var-in-Vars + Upper, or
  /// NoId for variables the grammar never saw.
  uint32_t ntId(NT X) const {
    auto It = VarIdx.find(X.Var);
    return It == VarIdx.end() ? NoId
                              : It->second * 2 + (X.Upper ? 1u : 0u);
  }

  void addProd(NT From, Prod P);
  void addEps(NT From, NT To);
  void eliminateEpsilon();
  void computeNonempty();

  const ConstraintContext *Ctx;
  /// Productions and ε-edges indexed by dense non-terminal id.
  std::vector<std::vector<Prod>> DenseProds;
  std::vector<std::vector<NT>> DenseEps;
  std::vector<uint8_t> NonemptyBit;
  std::unordered_map<SetVar, uint32_t> VarIdx;
  std::unordered_set<SetVar> External;
  std::vector<SetVar> Vars;
  std::vector<SetVar> RootVars;
  std::vector<std::pair<Constant, SetVar>> RootConsts;
};

} // namespace spidey

#endif // SPIDEY_RTG_GRAMMAR_H
