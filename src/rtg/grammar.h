//===-- rtg/grammar.h - Regular (tree) grammars ----------------*- C++ -*-===//
///
/// \file
/// The regular grammar Gr(S,E) of Definition 6.3.1 and its regular-tree
/// extension Gt(S,E) of Definition 6.3.3, generalized over the selector
/// signature.
///
/// For each set variable α the grammar has non-terminals αL and αU
/// generating the non-constant lower and upper bounds of α in Π(S)|E:
///
///   αU → α, αL → α                            for α ∈ E
///   αU → βU,        βL → αL                   for [α ≤ β] ∈ S
///   αU → s(βU)      for [α ≤ s(β)] ∈ S        (monotone s)
///   βL → s(αL)      for [s(α) ≤ β] ∈ S        (monotone s)
///   αU → s(βL)      for [α ≤ s(β)] ∈ S        (anti-monotone s)
///   βL → s(αU)      for [s(α) ≤ β] ∈ S        (anti-monotone s)
///
/// The tree extension adds the root productions
///   R → [αL ≤ αU]   for every α in S, and
///   R → [c ≤ αU]    for every [c ≤ α] ∈ S.
///
/// A "word" of a non-terminal is a selector string followed by an external
/// variable: s1(s2(...(α))). The grammar is also the NFA over the alphabet
/// Selectors ∪ E used by the containment and entailment algorithms.
///
/// Storage is flat: productions and ε-edges live in CSR arrays indexed by
/// dense non-terminal id (2 per variable), and ε-elimination produces
/// spans — ε-free non-terminals alias their pre-elimination slice with no
/// copy. This file is on the simplifier's hot path; see DESIGN.md §10.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_RTG_GRAMMAR_H
#define SPIDEY_RTG_GRAMMAR_H

#include "constraints/constraint_system.h"
#include "support/arena.h"

#include <vector>

namespace spidey {

/// A non-terminal: a set variable tagged with its side.
struct NT {
  SetVar Var = NoSetVar;
  bool Upper = false;

  friend bool operator==(NT A, NT B) {
    return A.Var == B.Var && A.Upper == B.Upper;
  }
  uint64_t key() const { return (uint64_t(Var) << 1) | (Upper ? 1 : 0); }
};

/// A production right-hand side after ε-removal: either a terminal
/// external variable, or a selector applied to a non-terminal.
struct Prod {
  enum class Kind : uint8_t { Term, Sel };
  Kind K = Kind::Term;
  SetVar TermVar = NoSetVar; ///< Kind::Term
  Selector S = 0;            ///< Kind::Sel
  NT Target;                 ///< Kind::Sel
};

/// Gr(S,E) / Gt(S,E) with ε-productions removed.
class Grammar {
public:
  /// Builds the grammar from a (closed) simple constraint system and the
  /// external variable set E.
  Grammar(const ConstraintSystem &S, const std::vector<SetVar> &E);

  const ConstraintContext &context() const { return *Ctx; }

  /// ε-free productions of a non-terminal.
  ArenaSpan<Prod> prods(NT X) const {
    uint32_t Id = ntId(X);
    if (Id == NoId)
      return {};
    const ProdRef &R = Final[Id];
    const Prod *Base = (R.Merged ? MergedProds : BaseProds).data();
    return {Base + R.Off, R.Len};
  }

  /// Root productions R → [γL ≤ γU] (one per variable of S).
  const std::vector<SetVar> &rootVars() const { return RootVars; }
  /// Root productions R → [c ≤ ωU].
  const std::vector<std::pair<Constant, SetVar>> &rootConsts() const {
    return RootConsts;
  }

  /// True if L(X) is non-empty.
  bool nonempty(NT X) const {
    uint32_t Id = ntId(X);
    return Id != NoId && NonemptyBit[Id];
  }

  /// Unit (ε) production targets of X from the pre-elimination grammar,
  /// needed for faithful reachability computations (§6.4.2).
  ArenaSpan<NT> epsTargets(NT X) const {
    uint32_t Id = ntId(X);
    if (Id == NoId)
      return {};
    return {EpsTgt.data() + EpsOff[Id], EpsOff[Id + 1] - EpsOff[Id]};
  }

  /// All variables mentioned by the underlying system.
  const std::vector<SetVar> &variables() const { return Vars; }

  bool isExternal(SetVar V) const {
    return V < ExternalBit.size() && ExternalBit[V];
  }

  static constexpr uint32_t NoId = ~0u;

  /// Dense non-terminal id of X (2 * position-of-Var-in-Vars + Upper), or
  /// NoId for variables the grammar never saw. Exposed so callers can keep
  /// per-NT scratch in flat arrays instead of hash sets.
  uint32_t ntId(NT X) const {
    uint32_t I = X.Var < VarIdx.size() ? VarIdx[X.Var] : NoId;
    return I == NoId ? NoId : I * 2 + (X.Upper ? 1u : 0u);
  }

  /// Number of dense non-terminal ids (2 per variable).
  uint32_t numNonterminals() const {
    return static_cast<uint32_t>(Final.size());
  }

private:
  /// Post-elimination production list of one non-terminal: a slice of
  /// BaseProds (ε-free, zero-copy) or of MergedProds (ε-merged).
  struct ProdRef {
    uint32_t Off = 0;
    uint32_t Len = 0;
    uint8_t Merged = 0;
  };

  void eliminateEpsilon();
  void computeNonempty();

  const ConstraintContext *Ctx;
  /// Pre-elimination productions in CSR form over dense NT ids.
  std::vector<Prod> BaseProds;
  std::vector<uint32_t> BaseOff;
  /// Payload for non-terminals whose lists changed under ε-elimination.
  std::vector<Prod> MergedProds;
  /// Per-NT production view after ε-elimination.
  std::vector<ProdRef> Final;
  /// ε-edges in CSR form (retained for reachability, §6.4.2).
  std::vector<NT> EpsTgt;
  std::vector<uint32_t> EpsOff;
  std::vector<uint8_t> NonemptyBit;
  /// Direct-mapped SetVar -> dense var index (NoId when never seen).
  std::vector<uint32_t> VarIdx;
  std::vector<uint8_t> ExternalBit;
  std::vector<SetVar> Vars;
  std::vector<SetVar> RootVars;
  std::vector<std::pair<Constant, SetVar>> RootConsts;
};

} // namespace spidey

#endif // SPIDEY_RTG_GRAMMAR_H
