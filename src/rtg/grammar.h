//===-- rtg/grammar.h - Regular (tree) grammars ----------------*- C++ -*-===//
///
/// \file
/// The regular grammar Gr(S,E) of Definition 6.3.1 and its regular-tree
/// extension Gt(S,E) of Definition 6.3.3, generalized over the selector
/// signature.
///
/// For each set variable α the grammar has non-terminals αL and αU
/// generating the non-constant lower and upper bounds of α in Π(S)|E:
///
///   αU → α, αL → α                            for α ∈ E
///   αU → βU,        βL → αL                   for [α ≤ β] ∈ S
///   αU → s(βU)      for [α ≤ s(β)] ∈ S        (monotone s)
///   βL → s(αL)      for [s(α) ≤ β] ∈ S        (monotone s)
///   αU → s(βL)      for [α ≤ s(β)] ∈ S        (anti-monotone s)
///   βL → s(αU)      for [s(α) ≤ β] ∈ S        (anti-monotone s)
///
/// The tree extension adds the root productions
///   R → [αL ≤ αU]   for every α in S, and
///   R → [c ≤ αU]    for every [c ≤ α] ∈ S.
///
/// A "word" of a non-terminal is a selector string followed by an external
/// variable: s1(s2(...(α))). The grammar is also the NFA over the alphabet
/// Selectors ∪ E used by the containment and entailment algorithms.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_RTG_GRAMMAR_H
#define SPIDEY_RTG_GRAMMAR_H

#include "constraints/constraint_system.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace spidey {

/// A non-terminal: a set variable tagged with its side.
struct NT {
  SetVar Var = NoSetVar;
  bool Upper = false;

  friend bool operator==(NT A, NT B) {
    return A.Var == B.Var && A.Upper == B.Upper;
  }
  uint64_t key() const { return (uint64_t(Var) << 1) | (Upper ? 1 : 0); }
};

/// A production right-hand side after ε-removal: either a terminal
/// external variable, or a selector applied to a non-terminal.
struct Prod {
  enum class Kind : uint8_t { Term, Sel };
  Kind K = Kind::Term;
  SetVar TermVar = NoSetVar; ///< Kind::Term
  Selector S = 0;            ///< Kind::Sel
  NT Target;                 ///< Kind::Sel
};

/// Gr(S,E) / Gt(S,E) with ε-productions removed.
class Grammar {
public:
  /// Builds the grammar from a (closed) simple constraint system and the
  /// external variable set E.
  Grammar(const ConstraintSystem &S, const std::vector<SetVar> &E);

  const ConstraintContext &context() const { return *Ctx; }

  /// ε-free productions of a non-terminal.
  const std::vector<Prod> &prods(NT X) const {
    static const std::vector<Prod> Empty;
    auto It = Prods.find(X.key());
    return It == Prods.end() ? Empty : It->second;
  }

  /// Root productions R → [γL ≤ γU] (one per variable of S).
  const std::vector<SetVar> &rootVars() const { return RootVars; }
  /// Root productions R → [c ≤ ωU].
  const std::vector<std::pair<Constant, SetVar>> &rootConsts() const {
    return RootConsts;
  }

  /// True if L(X) is non-empty.
  bool nonempty(NT X) const { return Nonempty.count(X.key()) != 0; }

  /// Unit (ε) production targets of X from the pre-elimination grammar,
  /// needed for faithful reachability computations (§6.4.2).
  const std::vector<NT> &epsTargets(NT X) const {
    static const std::vector<NT> Empty;
    auto It = Eps.find(X.key());
    return It == Eps.end() ? Empty : It->second;
  }

  /// All variables mentioned by the underlying system.
  const std::vector<SetVar> &variables() const { return Vars; }

  bool isExternal(SetVar V) const { return External.count(V) != 0; }

private:
  void addProd(NT From, Prod P);
  void addEps(NT From, NT To);
  void eliminateEpsilon();
  void computeNonempty();

  const ConstraintContext *Ctx;
  std::unordered_map<uint64_t, std::vector<Prod>> Prods;
  std::unordered_map<uint64_t, std::vector<NT>> Eps;
  std::unordered_set<uint64_t> Nonempty;
  std::unordered_set<SetVar> External;
  std::vector<SetVar> Vars;
  std::vector<SetVar> RootVars;
  std::vector<std::pair<Constant, SetVar>> RootConsts;
};

} // namespace spidey

#endif // SPIDEY_RTG_GRAMMAR_H
