//===-- rtg/entail.cpp ----------------------------------------*- C++ -*-===//

#include "rtg/entail.h"

#include "rtg/contain.h"

#include <algorithm>
#include <map>
#include <set>

using namespace spidey;

namespace {

/// A candidate pair (lower-side NT, upper-side NT) from G2.
struct Pair {
  NT L, U;
  friend bool operator<(const Pair &A, const Pair &B) {
    return std::make_pair(A.L.key(), A.U.key()) <
           std::make_pair(B.L.key(), B.U.key());
  }
  friend bool operator==(const Pair &A, const Pair &B) {
    return A.L == B.L && A.U == B.U;
  }
};

using PairSet = std::vector<Pair>; // sorted, unique

PairSet canonical(PairSet P) {
  std::sort(P.begin(), P.end());
  P.erase(std::unique(P.begin(), P.end()), P.end());
  return P;
}

/// The state of one R[αL, βU, C, D] query (C is global and omitted).
struct RKey {
  uint64_t LKey, UKey;
  PairSet D;
  friend bool operator<(const RKey &A, const RKey &B) {
    if (A.LKey != B.LKey)
      return A.LKey < B.LKey;
    if (A.UKey != B.UKey)
      return A.UKey < B.UKey;
    return A.D < B.D;
  }
};

class Entailer {
public:
  Entailer(const Grammar &G1, const Grammar &G2, EntailOptions Opts)
      : G1(G1), G2(G2), Sels(G1.context().Selectors), Opts(Opts) {
    for (SetVar V : G2.rootVars())
      C.push_back({NT{V, false}, NT{V, true}});
    C = canonical(std::move(C));
  }

  Decision run() {
    // Condition 2: constant constraints of G1 must be covered by G2's.
    for (const auto &[Const, Var] : G1.rootConsts()) {
      Lang Rhs;
      for (const auto &[C2, V2] : G2.rootConsts())
        if (C2 == Const)
          Rhs.append(Lang::ofNT(G2, NT{V2, true}));
      if (!langContained(Lang::ofNT(G1, NT{Var, true}), Rhs))
        return Decision::No;
    }
    // Condition 1: the coinductive relation holds for every root pair,
    // computed as a greatest fixed point: retry while new falsities are
    // discovered (cycle hypotheses may have been too optimistic).
    for (;;) {
      FalsifiedGrew = false;
      bool AllHold = true;
      for (SetVar V : G1.rootVars()) {
        std::set<RKey> InProgress;
        if (!rel(NT{V, false}, NT{V, true}, {}, InProgress)) {
          AllHold = false;
          if (!FalsifiedGrew)
            return Decision::No;
          break;
        }
        if (Exhausted)
          return Decision::Unknown;
      }
      if (Exhausted)
        return Decision::Unknown;
      if (AllHold && !FalsifiedGrew)
        return Decision::Yes;
      if (AllHold)
        continue; // re-verify with the enlarged false set
    }
  }

private:
  /// R[αL, βU, C, D]: true unless falsified.
  bool rel(NT AL, NT BU, PairSet D, std::set<RKey> &InProgress) {
    D = canonical(std::move(D));
    RKey Key{AL.key(), BU.key(), D};
    if (False.count(Key))
      return false;
    if (InProgress.count(Key))
      return true; // coinductive hypothesis
    if (++Nodes > Opts.NodeBudget) {
      Exhausted = true;
      return true;
    }
    InProgress.insert(Key);
    bool Result = compute(AL, BU, D, InProgress);
    InProgress.erase(Key);
    if (!Result) {
      False.insert(Key);
      FalsifiedGrew = true;
    }
    return Result;
  }

  bool compute(NT AL, NT BU, const PairSet &D, std::set<RKey> &InProgress) {
    // C ∪ D as languages for case 1.
    std::vector<std::pair<Lang, Lang>> Candidates;
    auto AddPairs = [&](const PairSet &Ps) {
      for (const Pair &P : Ps)
        Candidates.emplace_back(Lang::ofNT(G2, P.L), Lang::ofNT(G2, P.U));
    };
    AddPairs(C);
    AddPairs(D);

    for (const Prod &X : G1.prods(AL)) {
      for (const Prod &Y : G1.prods(BU)) {
        // Case 1: product containment in the candidate union.
        if (productContained(Lang::ofForm(G1, X), Lang::ofForm(G1, Y),
                             Candidates))
          continue;
        // Cases 2/3: peel a shared selector.
        if (X.K == Prod::Kind::Sel && Y.K == Prod::Kind::Sel && X.S == Y.S) {
          Selector S = X.S;
          PairSet DPrime;
          auto Extend = [&](const PairSet &Ps) {
            for (const Pair &P : Ps) {
              for (const Prod &PL : G2.prods(P.L)) {
                if (PL.K != Prod::Kind::Sel || PL.S != S)
                  continue;
                for (const Prod &PU : G2.prods(P.U)) {
                  if (PU.K != Prod::Kind::Sel || PU.S != S)
                    continue;
                  if (Sels.isMonotone(S))
                    DPrime.push_back({PL.Target, PU.Target});
                  else
                    DPrime.push_back({PU.Target, PL.Target});
                }
              }
            }
          };
          Extend(C);
          Extend(D);
          bool Sub;
          if (Sels.isMonotone(S)) {
            // [s(κ1) ≤ s(κ2)] needs [κ1 ≤ κ2].
            Sub = rel(X.Target, Y.Target, std::move(DPrime), InProgress);
          } else {
            // [s(κ1) ≤ s(κ2)] needs [κ2 ≤ κ1]: sides swap.
            Sub = rel(Y.Target, X.Target, std::move(DPrime), InProgress);
          }
          if (Sub)
            continue;
        }
        return false;
      }
    }
    return true;
  }

  const Grammar &G1, &G2;
  const SelectorTable &Sels;
  EntailOptions Opts;
  PairSet C;
  std::set<RKey> False;
  uint64_t Nodes = 0;
  bool Exhausted = false;
  bool FalsifiedGrew = false;
};

} // namespace

Decision spidey::entails(const ConstraintSystem &S2,
                         const ConstraintSystem &S1,
                         const std::vector<SetVar> &E, EntailOptions Opts) {
  Grammar G1(S1, E), G2(S2, E);
  return Entailer(G1, G2, Opts).run();
}

Decision spidey::observablyEquivalent(const ConstraintSystem &S1,
                                      const ConstraintSystem &S2,
                                      const std::vector<SetVar> &E,
                                      EntailOptions Opts) {
  Decision A = entails(S2, S1, E, Opts);
  if (A == Decision::No)
    return Decision::No;
  Decision B = entails(S1, S2, E, Opts);
  if (B == Decision::No)
    return Decision::No;
  if (A == Decision::Unknown || B == Decision::Unknown)
    return Decision::Unknown;
  return Decision::Yes;
}
