//===-- rtg/entail.h - Deciding restricted entailment ----------*- C++ -*-===//
///
/// \file
/// The entailment algorithm of §6.3.4 (fig. 6.3): decides the restricted
/// entailment S2 ⊢E S1 (every solution of S2 restricted to E is a solution
/// of S1), and, by running it in both directions, the observable
/// equivalence S1 ≅E S2 (§6.2, Theorem 6.3.6).
///
/// Both systems must be over the same ConstraintContext and closed under
/// Θ. The algorithm is complete but takes exponential time (the problem is
/// PSPACE-hard, §6.3.4); a node budget guards against blow-ups, reporting
/// Unknown when exhausted.
///
//===----------------------------------------------------------------------===//

#ifndef SPIDEY_RTG_ENTAIL_H
#define SPIDEY_RTG_ENTAIL_H

#include "rtg/grammar.h"

#include <vector>

namespace spidey {

enum class Decision : uint8_t { Yes, No, Unknown };

struct EntailOptions {
  /// Maximum number of relation nodes explored before giving up.
  uint64_t NodeBudget = 2'000'000;
};

/// Decides whether S2 entails S1 with respect to E, i.e. whether
/// Ψ(Θ(S2))|E ⊇ Π(Θ(S1))|E (Definition 6.2.5 via Lemma 6.3.5). Both
/// systems must be closed under Θ.
Decision entails(const ConstraintSystem &S2, const ConstraintSystem &S1,
                 const std::vector<SetVar> &E, EntailOptions Opts = {});

/// Decides S1 ≅E S2 by two-way entailment.
Decision observablyEquivalent(const ConstraintSystem &S1,
                              const ConstraintSystem &S2,
                              const std::vector<SetVar> &E,
                              EntailOptions Opts = {});

} // namespace spidey

#endif // SPIDEY_RTG_ENTAIL_H
