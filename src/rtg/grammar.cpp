//===-- rtg/grammar.cpp ---------------------------------------*- C++ -*-===//

#include "rtg/grammar.h"

#include <algorithm>

using namespace spidey;

Grammar::Grammar(const ConstraintSystem &S, const std::vector<SetVar> &E)
    : Ctx(&S.context()) {
  External.insert(E.begin(), E.end());
  Vars = S.variables();
  // External variables may be untouched by any constraint; they still have
  // the (reflex) productions and root pairs.
  for (SetVar V : E)
    if (std::find(Vars.begin(), Vars.end(), V) == Vars.end())
      Vars.push_back(V);

  const SelectorTable &Sels = Ctx->Selectors;
  for (SetVar V : Vars) {
    NT L{V, false}, U{V, true};
    if (External.count(V)) {
      addProd(L, Prod{Prod::Kind::Term, V, 0, {}});
      addProd(U, Prod{Prod::Kind::Term, V, 0, {}});
    }
    for (const UpperBound &UB : S.upperBounds(V)) {
      if (UB.K == UpperBound::Kind::FilterUB) {
        // Conditional edges are approximated as an uninterpreted monotone
        // pseudo-selector (conservative for both simplification keeping
        // and entailment).
        Selector F = const_cast<ConstraintContext *>(Ctx)->Selectors.intern(
            "%filter" + std::to_string(UB.Sel), Polarity::Monotone);
        addProd(NT{UB.Other, false},
                Prod{Prod::Kind::Sel, NoSetVar, F, NT{V, false}});
        continue;
      }
      if (UB.K == UpperBound::Kind::VarUB) {
        // [α ≤ β]: αU → βU and βL → αL.
        addEps(U, NT{UB.Other, true});
        addEps(NT{UB.Other, false}, L);
      } else if (Sels.isMonotone(UB.Sel)) {
        // [s(α) ≤ β] (monotone): βL → s(αL).
        addProd(NT{UB.Other, false}, Prod{Prod::Kind::Sel, NoSetVar, UB.Sel,
                                          NT{V, false}});
      } else {
        // [β ≤ s(α)] (anti-monotone): βU → s(αL)? No — this is an upper
        // bound β ≤ s⁻(α) on α, i.e. the constraint [β ≤ s(α)], giving
        // βU → s(αL) by the anti-monotone rule with (α, β) swapped:
        // the bounded variable is UB.Other (the β).
        addProd(NT{UB.Other, true},
                Prod{Prod::Kind::Sel, NoSetVar, UB.Sel, NT{V, false}});
      }
    }
    for (const LowerBound &LB : S.lowerBounds(V)) {
      if (LB.K == LowerBound::Kind::ConstLB) {
        RootConsts.emplace_back(LB.C, V);
      } else if (Sels.isMonotone(LB.Sel)) {
        // [β ≤ s(α)] (monotone): βU → s(αU).
        addProd(NT{LB.Other, true},
                Prod{Prod::Kind::Sel, NoSetVar, LB.Sel, NT{V, true}});
      } else {
        // [s(α) ≤ β] (anti-monotone): βL → s(αU).
        addProd(NT{LB.Other, false},
                Prod{Prod::Kind::Sel, NoSetVar, LB.Sel, NT{V, true}});
      }
    }
  }
  RootVars = Vars;
  eliminateEpsilon();
  computeNonempty();
}

void Grammar::addProd(NT From, Prod P) { Prods[From.key()].push_back(P); }

void Grammar::addEps(NT From, NT To) { Eps[From.key()].push_back(To); }

void Grammar::eliminateEpsilon() {
  // For each non-terminal, add the productions of every ε-reachable
  // non-terminal, then drop the ε edges.
  std::unordered_map<uint64_t, std::vector<Prod>> Closed;
  for (SetVar V : Vars) {
    for (bool Upper : {false, true}) {
      NT X{V, Upper};
      std::vector<uint64_t> Stack{X.key()};
      std::unordered_set<uint64_t> Seen{X.key()};
      std::vector<Prod> Merged;
      std::unordered_set<uint64_t> ProdKeys;
      auto Push = [&](const Prod &P) {
        uint64_t Key = P.K == Prod::Kind::Term
                           ? (uint64_t(1) << 63) | P.TermVar
                           : (uint64_t(P.S) << 34) | P.Target.key();
        if (ProdKeys.insert(Key).second)
          Merged.push_back(P);
      };
      while (!Stack.empty()) {
        uint64_t Cur = Stack.back();
        Stack.pop_back();
        auto PIt = Prods.find(Cur);
        if (PIt != Prods.end())
          for (const Prod &P : PIt->second)
            Push(P);
        auto EIt = Eps.find(Cur);
        if (EIt != Eps.end())
          for (NT Next : EIt->second)
            if (Seen.insert(Next.key()).second)
              Stack.push_back(Next.key());
      }
      if (!Merged.empty())
        Closed[X.key()] = std::move(Merged);
    }
  }
  Prods = std::move(Closed);
  // Eps is retained for reachability queries (§6.4.2).
}

void Grammar::computeNonempty() {
  // Fixpoint: X nonempty if it has a Term production or a Sel production
  // into a nonempty target.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto &[Key, Ps] : Prods) {
      if (Nonempty.count(Key))
        continue;
      for (const Prod &P : Ps) {
        if (P.K == Prod::Kind::Term ||
            (P.K == Prod::Kind::Sel && Nonempty.count(P.Target.key()))) {
          Nonempty.insert(Key);
          Changed = true;
          break;
        }
      }
    }
  }
}
