//===-- rtg/grammar.cpp ---------------------------------------*- C++ -*-===//

#include "rtg/grammar.h"

#include "support/flathash.h"

#include <algorithm>

using namespace spidey;

Grammar::Grammar(const ConstraintSystem &S, const std::vector<SetVar> &E)
    : Ctx(&S.context()) {
  Vars = S.variables();
  {
    SetVar MaxV = 0;
    for (SetVar V : Vars)
      MaxV = std::max(MaxV, V);
    for (SetVar V : E)
      MaxV = std::max(MaxV, V);
    VarIdx.assign(Vars.empty() && E.empty() ? 0 : size_t(MaxV) + 1, NoId);
    ExternalBit.assign(VarIdx.size(), 0);
  }
  for (SetVar V : E)
    ExternalBit[V] = 1;
  for (uint32_t I = 0; I < Vars.size(); ++I)
    VarIdx[Vars[I]] = I;
  // External variables may be untouched by any constraint; they still have
  // the (reflex) productions and root pairs.
  for (SetVar V : E)
    if (VarIdx[V] == NoId) {
      VarIdx[V] = static_cast<uint32_t>(Vars.size());
      Vars.push_back(V);
    }
  uint32_t NumNT = static_cast<uint32_t>(Vars.size()) * 2;

  // The %filter pseudo-selector for a given real selector is interned once
  // and cached: the old per-constraint string build + table lookup was a
  // measurable share of grammar construction.
  constexpr Selector NoSel = ~Selector(0);
  std::vector<Selector> FilterCache;
  auto FilterFor = [&](Selector Sel) {
    if (FilterCache.size() <= Sel)
      FilterCache.resize(size_t(Sel) + 1, NoSel);
    if (FilterCache[Sel] == NoSel)
      FilterCache[Sel] = const_cast<ConstraintContext *>(Ctx)->Selectors.intern(
          "%filter" + std::to_string(Sel), Polarity::Monotone);
    return FilterCache[Sel];
  };

  // Productions and ε-edges go straight into CSR arrays: pass A counts
  // per-NT entries, pass B fills them in the same iteration order, so each
  // per-NT slice preserves the historical append order with zero per-NT
  // vector allocations.
  const SelectorTable &Sels = Ctx->Selectors;
  BaseOff.assign(NumNT + 1, 0);
  EpsOff.assign(NumNT + 1, 0);
  for (SetVar V : Vars) {
    NT L{V, false}, U{V, true};
    if (ExternalBit[V]) {
      ++BaseOff[ntId(L) + 1];
      ++BaseOff[ntId(U) + 1];
    }
    for (const UpperBound &UB : S.upperBounds(V)) {
      if (UB.K == UpperBound::Kind::FilterUB) {
        FilterFor(UB.Sel); // warm the cache
        ++BaseOff[ntId(NT{UB.Other, false}) + 1];
      } else if (UB.K == UpperBound::Kind::VarUB) {
        ++EpsOff[ntId(U) + 1];
        ++EpsOff[ntId(NT{UB.Other, false}) + 1];
      } else if (Sels.isMonotone(UB.Sel)) {
        ++BaseOff[ntId(NT{UB.Other, false}) + 1];
      } else {
        ++BaseOff[ntId(NT{UB.Other, true}) + 1];
      }
    }
    for (const LowerBound &LB : S.lowerBounds(V)) {
      if (LB.K == LowerBound::Kind::ConstLB)
        RootConsts.emplace_back(LB.C, V);
      else if (Sels.isMonotone(LB.Sel))
        ++BaseOff[ntId(NT{LB.Other, true}) + 1];
      else
        ++BaseOff[ntId(NT{LB.Other, false}) + 1];
    }
  }
  for (uint32_t Id = 0; Id < NumNT; ++Id) {
    BaseOff[Id + 1] += BaseOff[Id];
    EpsOff[Id + 1] += EpsOff[Id];
  }
  BaseProds.resize(BaseOff[NumNT]);
  EpsTgt.resize(EpsOff[NumNT]);
  {
    std::vector<uint32_t> PFill(BaseOff.begin(), BaseOff.end() - 1);
    std::vector<uint32_t> EFill(EpsOff.begin(), EpsOff.end() - 1);
    auto AddProd = [&](NT From, Prod P) { BaseProds[PFill[ntId(From)]++] = P; };
    auto AddEps = [&](NT From, NT To) { EpsTgt[EFill[ntId(From)]++] = To; };
    for (SetVar V : Vars) {
      NT L{V, false}, U{V, true};
      if (ExternalBit[V]) {
        AddProd(L, Prod{Prod::Kind::Term, V, 0, {}});
        AddProd(U, Prod{Prod::Kind::Term, V, 0, {}});
      }
      for (const UpperBound &UB : S.upperBounds(V)) {
        if (UB.K == UpperBound::Kind::FilterUB) {
          // Conditional edges are approximated as an uninterpreted monotone
          // pseudo-selector (conservative for both simplification keeping
          // and entailment).
          AddProd(NT{UB.Other, false},
                  Prod{Prod::Kind::Sel, NoSetVar, FilterFor(UB.Sel),
                       NT{V, false}});
        } else if (UB.K == UpperBound::Kind::VarUB) {
          // [α ≤ β]: αU → βU and βL → αL.
          AddEps(U, NT{UB.Other, true});
          AddEps(NT{UB.Other, false}, L);
        } else if (Sels.isMonotone(UB.Sel)) {
          // [s(α) ≤ β] (monotone): βL → s(αL).
          AddProd(NT{UB.Other, false},
                  Prod{Prod::Kind::Sel, NoSetVar, UB.Sel, NT{V, false}});
        } else {
          // [β ≤ s(α)] (anti-monotone): βU → s(αL) with (α, β) swapped:
          // the bounded variable is UB.Other (the β).
          AddProd(NT{UB.Other, true},
                  Prod{Prod::Kind::Sel, NoSetVar, UB.Sel, NT{V, false}});
        }
      }
      for (const LowerBound &LB : S.lowerBounds(V)) {
        if (LB.K == LowerBound::Kind::ConstLB) {
          // Collected in pass A (RootConsts).
        } else if (Sels.isMonotone(LB.Sel)) {
          // [β ≤ s(α)] (monotone): βU → s(αU).
          AddProd(NT{LB.Other, true},
                  Prod{Prod::Kind::Sel, NoSetVar, LB.Sel, NT{V, true}});
        } else {
          // [s(α) ≤ β] (anti-monotone): βL → s(αU).
          AddProd(NT{LB.Other, false},
                  Prod{Prod::Kind::Sel, NoSetVar, LB.Sel, NT{V, true}});
        }
      }
    }
  }
  RootVars = Vars;
  eliminateEpsilon();
  computeNonempty();
}

void Grammar::eliminateEpsilon() {
  // For each non-terminal, add the productions of every ε-reachable
  // non-terminal, then drop the ε edges from the production relation
  // (Eps is retained for reachability queries, §6.4.2).
  //
  // Non-terminals without ε out-edges keep their base CSR slice with no
  // copy; merged lists are appended to MergedProds. Stamped scratch keeps
  // the per-NT walks free of allocations: SeenStamp marks ε-visited ids,
  // ProdSeen dedups merged productions.
  uint32_t NumNT = static_cast<uint32_t>(BaseOff.size()) - 1;
  Final.resize(NumNT);
  std::vector<uint32_t> SeenStamp(NumNT, 0);
  StampedKeySet ProdSeen;
  std::vector<uint32_t> Stack;
  for (uint32_t Id = 0; Id < NumNT; ++Id) {
    if (EpsOff[Id] == EpsOff[Id + 1]) {
      // No ε out-edges: the closed production set is the base slice.
      Final[Id] = {BaseOff[Id], BaseOff[Id + 1] - BaseOff[Id], 0};
      continue;
    }
    uint32_t Stamp = Id + 1;
    ProdSeen.clear();
    uint32_t MergedStart = static_cast<uint32_t>(MergedProds.size());
    auto Push = [&](const Prod &P) {
      uint64_t Key = P.K == Prod::Kind::Term
                         ? (uint64_t(1) << 63) | P.TermVar
                         : (uint64_t(P.S) << 34) | P.Target.key();
      if (ProdSeen.insert(Key))
        MergedProds.push_back(P);
    };
    Stack.assign(1, Id);
    SeenStamp[Id] = Stamp;
    while (!Stack.empty()) {
      uint32_t Cur = Stack.back();
      Stack.pop_back();
      for (uint32_t I = BaseOff[Cur]; I < BaseOff[Cur + 1]; ++I)
        Push(BaseProds[I]);
      for (uint32_t I = EpsOff[Cur]; I < EpsOff[Cur + 1]; ++I) {
        uint32_t NId = ntId(EpsTgt[I]);
        if (SeenStamp[NId] != Stamp) {
          SeenStamp[NId] = Stamp;
          Stack.push_back(NId);
        }
      }
    }
    Final[Id] = {MergedStart,
                 static_cast<uint32_t>(MergedProds.size()) - MergedStart, 1};
  }
}

void Grammar::computeNonempty() {
  // Least fixpoint: X nonempty if it has a Term production or a Sel
  // production into a nonempty target. Worklist over reverse Sel edges in
  // CSR form (count, prefix-sum, fill).
  uint32_t NumNT = static_cast<uint32_t>(Final.size());
  NonemptyBit.assign(NumNT, 0);
  std::vector<uint32_t> RevOff(NumNT + 1, 0);
  std::vector<uint32_t> Work;
  auto FinalProds = [&](uint32_t Id) {
    const ProdRef &R = Final[Id];
    const Prod *Base = (R.Merged ? MergedProds : BaseProds).data();
    return ArenaSpan<Prod>{Base + R.Off, R.Len};
  };
  for (uint32_t Id = 0; Id < NumNT; ++Id)
    for (const Prod &P : FinalProds(Id))
      if (P.K == Prod::Kind::Sel)
        ++RevOff[ntId(P.Target) + 1];
  for (uint32_t Id = 0; Id < NumNT; ++Id)
    RevOff[Id + 1] += RevOff[Id];
  std::vector<uint32_t> RevDst(RevOff[NumNT]);
  {
    std::vector<uint32_t> Fill(RevOff.begin(), RevOff.end() - 1);
    for (uint32_t Id = 0; Id < NumNT; ++Id)
      for (const Prod &P : FinalProds(Id)) {
        if (P.K == Prod::Kind::Term) {
          if (!NonemptyBit[Id]) {
            NonemptyBit[Id] = 1;
            Work.push_back(Id);
          }
        } else {
          RevDst[Fill[ntId(P.Target)]++] = Id;
        }
      }
  }
  while (!Work.empty()) {
    uint32_t Id = Work.back();
    Work.pop_back();
    for (uint32_t I = RevOff[Id]; I < RevOff[Id + 1]; ++I) {
      uint32_t Src = RevDst[I];
      if (!NonemptyBit[Src]) {
        NonemptyBit[Src] = 1;
        Work.push_back(Src);
      }
    }
  }
}
