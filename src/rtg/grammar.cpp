//===-- rtg/grammar.cpp ---------------------------------------*- C++ -*-===//

#include "rtg/grammar.h"

#include <algorithm>

using namespace spidey;

Grammar::Grammar(const ConstraintSystem &S, const std::vector<SetVar> &E)
    : Ctx(&S.context()) {
  External.insert(E.begin(), E.end());
  Vars = S.variables();
  // External variables may be untouched by any constraint; they still have
  // the (reflex) productions and root pairs.
  {
    std::unordered_set<SetVar> InVars(Vars.begin(), Vars.end());
    for (SetVar V : E)
      if (!InVars.count(V))
        Vars.push_back(V);
  }
  VarIdx.reserve(Vars.size());
  for (uint32_t I = 0; I < Vars.size(); ++I)
    VarIdx.emplace(Vars[I], I);
  DenseProds.resize(Vars.size() * 2);
  DenseEps.resize(Vars.size() * 2);

  const SelectorTable &Sels = Ctx->Selectors;
  for (SetVar V : Vars) {
    NT L{V, false}, U{V, true};
    if (External.count(V)) {
      addProd(L, Prod{Prod::Kind::Term, V, 0, {}});
      addProd(U, Prod{Prod::Kind::Term, V, 0, {}});
    }
    for (const UpperBound &UB : S.upperBounds(V)) {
      if (UB.K == UpperBound::Kind::FilterUB) {
        // Conditional edges are approximated as an uninterpreted monotone
        // pseudo-selector (conservative for both simplification keeping
        // and entailment).
        Selector F = const_cast<ConstraintContext *>(Ctx)->Selectors.intern(
            "%filter" + std::to_string(UB.Sel), Polarity::Monotone);
        addProd(NT{UB.Other, false},
                Prod{Prod::Kind::Sel, NoSetVar, F, NT{V, false}});
        continue;
      }
      if (UB.K == UpperBound::Kind::VarUB) {
        // [α ≤ β]: αU → βU and βL → αL.
        addEps(U, NT{UB.Other, true});
        addEps(NT{UB.Other, false}, L);
      } else if (Sels.isMonotone(UB.Sel)) {
        // [s(α) ≤ β] (monotone): βL → s(αL).
        addProd(NT{UB.Other, false}, Prod{Prod::Kind::Sel, NoSetVar, UB.Sel,
                                          NT{V, false}});
      } else {
        // [β ≤ s(α)] (anti-monotone): βU → s(αL)? No — this is an upper
        // bound β ≤ s⁻(α) on α, i.e. the constraint [β ≤ s(α)], giving
        // βU → s(αL) by the anti-monotone rule with (α, β) swapped:
        // the bounded variable is UB.Other (the β).
        addProd(NT{UB.Other, true},
                Prod{Prod::Kind::Sel, NoSetVar, UB.Sel, NT{V, false}});
      }
    }
    for (const LowerBound &LB : S.lowerBounds(V)) {
      if (LB.K == LowerBound::Kind::ConstLB) {
        RootConsts.emplace_back(LB.C, V);
      } else if (Sels.isMonotone(LB.Sel)) {
        // [β ≤ s(α)] (monotone): βU → s(αU).
        addProd(NT{LB.Other, true},
                Prod{Prod::Kind::Sel, NoSetVar, LB.Sel, NT{V, true}});
      } else {
        // [s(α) ≤ β] (anti-monotone): βL → s(αU).
        addProd(NT{LB.Other, false},
                Prod{Prod::Kind::Sel, NoSetVar, LB.Sel, NT{V, true}});
      }
    }
  }
  RootVars = Vars;
  eliminateEpsilon();
  computeNonempty();
}

void Grammar::addProd(NT From, Prod P) {
  DenseProds[ntId(From)].push_back(P);
}

void Grammar::addEps(NT From, NT To) { DenseEps[ntId(From)].push_back(To); }

void Grammar::eliminateEpsilon() {
  // For each non-terminal, add the productions of every ε-reachable
  // non-terminal, then drop the ε edges from the production relation
  // (Eps is retained for reachability queries, §6.4.2).
  //
  // Stamped scratch arrays shared across the per-NT walks keep this free
  // of per-NT allocations: SeenStamp marks ε-visited ids, ProdStamp
  // dedups merged productions.
  uint32_t NumNT = static_cast<uint32_t>(DenseProds.size());
  std::vector<std::vector<Prod>> Closed(NumNT);
  std::vector<uint32_t> SeenStamp(NumNT, 0);
  std::unordered_map<uint64_t, uint32_t> ProdStamp;
  std::vector<uint32_t> Stack;
  for (uint32_t Id = 0; Id < NumNT; ++Id) {
    if (DenseEps[Id].empty()) {
      // No ε out-edges: the closed production set is the local one.
      Closed[Id] = DenseProds[Id];
      continue;
    }
    uint32_t Stamp = Id + 1;
    std::vector<Prod> Merged;
    auto Push = [&](const Prod &P) {
      uint64_t Key = P.K == Prod::Kind::Term
                         ? (uint64_t(1) << 63) | P.TermVar
                         : (uint64_t(P.S) << 34) | P.Target.key();
      auto [It, New] = ProdStamp.emplace(Key, Stamp);
      if (!New) {
        if (It->second == Stamp)
          return;
        It->second = Stamp;
      }
      Merged.push_back(P);
    };
    Stack.assign(1, Id);
    SeenStamp[Id] = Stamp;
    while (!Stack.empty()) {
      uint32_t Cur = Stack.back();
      Stack.pop_back();
      for (const Prod &P : DenseProds[Cur])
        Push(P);
      for (NT Next : DenseEps[Cur]) {
        uint32_t NId = ntId(Next);
        if (SeenStamp[NId] != Stamp) {
          SeenStamp[NId] = Stamp;
          Stack.push_back(NId);
        }
      }
    }
    Closed[Id] = std::move(Merged);
  }
  DenseProds = std::move(Closed);
}

void Grammar::computeNonempty() {
  // Least fixpoint: X nonempty if it has a Term production or a Sel
  // production into a nonempty target. Worklist over reverse Sel edges.
  uint32_t NumNT = static_cast<uint32_t>(DenseProds.size());
  NonemptyBit.assign(NumNT, 0);
  std::vector<std::vector<uint32_t>> Rev(NumNT);
  std::vector<uint32_t> Work;
  for (uint32_t Id = 0; Id < NumNT; ++Id) {
    for (const Prod &P : DenseProds[Id]) {
      if (P.K == Prod::Kind::Term) {
        if (!NonemptyBit[Id]) {
          NonemptyBit[Id] = 1;
          Work.push_back(Id);
        }
      } else {
        Rev[ntId(P.Target)].push_back(Id);
      }
    }
  }
  while (!Work.empty()) {
    uint32_t Id = Work.back();
    Work.pop_back();
    for (uint32_t Src : Rev[Id])
      if (!NonemptyBit[Src]) {
        NonemptyBit[Src] = 1;
        Work.push_back(Src);
      }
  }
}
