//===-- rtg/contain.cpp ---------------------------------------*- C++ -*-===//

#include "rtg/contain.h"

#include <algorithm>
#include <map>
#include <set>

using namespace spidey;

Lang Lang::ofNT(const Grammar &G, NT X) {
  Lang L;
  for (const Prod &P : G.prods(X))
    L.Forms.push_back({&G, P});
  return L;
}

Lang Lang::ofForm(const Grammar &G, Prod P) {
  Lang L;
  L.Forms.push_back({&G, P});
  return L;
}

namespace {

/// Canonical encoding of a form set, for memoization.
using Key = std::vector<uint64_t>;

uint64_t formKey(const Lang::Form &F) {
  uint64_t GBits = reinterpret_cast<uintptr_t>(F.G) & 0xffff;
  if (F.P.K == Prod::Kind::Term)
    return (uint64_t(1) << 63) | (GBits << 40) | F.P.TermVar;
  return (GBits << 40) | (uint64_t(F.P.S) << 34) | F.P.Target.key();
}

Key keyOf(const Lang &L) {
  Key K;
  K.reserve(L.Forms.size());
  for (const Lang::Form &F : L.Forms)
    K.push_back(formKey(F));
  std::sort(K.begin(), K.end());
  K.erase(std::unique(K.begin(), K.end()), K.end());
  return K;
}

/// The terminal variables directly accepted by \p L.
std::set<SetVar> termsOf(const Lang &L) {
  std::set<SetVar> T;
  for (const Lang::Form &F : L.Forms)
    if (F.P.K == Prod::Kind::Term)
      T.insert(F.P.TermVar);
  return T;
}

/// The selectors on which \p L can step.
std::set<Selector> selsOf(const Lang &L) {
  std::set<Selector> S;
  for (const Lang::Form &F : L.Forms)
    if (F.P.K == Prod::Kind::Sel)
      S.insert(F.P.S);
  return S;
}

/// Steps \p L on selector \p S: the union of the target non-terminals'
/// productions.
Lang stepLang(const Lang &L, Selector S) {
  Lang Next;
  std::set<uint64_t> Seen;
  for (const Lang::Form &F : L.Forms) {
    if (F.P.K != Prod::Kind::Sel || F.P.S != S)
      continue;
    for (const Prod &P : F.G->prods(F.P.Target)) {
      Lang::Form NF{F.G, P};
      if (Seen.insert(formKey(NF)).second)
        Next.Forms.push_back(NF);
    }
  }
  return Next;
}

bool containedRec(const Lang &A, const Lang &B,
                  std::set<std::pair<Key, Key>> &Visited) {
  auto State = std::make_pair(keyOf(A), keyOf(B));
  if (!Visited.insert(State).second)
    return true; // coinductive: revisit means no new counterexamples
  for (SetVar V : termsOf(A)) {
    std::set<SetVar> BT = termsOf(B);
    if (!BT.count(V))
      return false;
  }
  for (Selector S : selsOf(A))
    if (!containedRec(stepLang(A, S), stepLang(B, S), Visited))
      return false;
  return true;
}

} // namespace

bool spidey::langContained(const Lang &A, const Lang &B) {
  std::set<std::pair<Key, Key>> Visited;
  return containedRec(A, B, Visited);
}

namespace {

struct ProductChecker {
  const std::vector<std::pair<Lang, Lang>> &Rhs;
  const Lang &B1;
  std::set<std::pair<Key, std::vector<Key>>> Visited;
  std::map<std::vector<int>, bool> SecondMemo;

  /// B1 ⊆ ⋃_{i∈T} Bi, memoized by T.
  bool checkSecond(const std::vector<int> &T) {
    auto It = SecondMemo.find(T);
    if (It != SecondMemo.end())
      return It->second;
    Lang Union;
    for (int I : T)
      Union.append(Rhs[I].second);
    bool R = langContained(B1, Union);
    SecondMemo.emplace(T, R);
    return R;
  }

  bool run(const Lang &A1, std::vector<Lang> As) {
    std::vector<Key> AKeys;
    for (const Lang &A : As)
      AKeys.push_back(keyOf(A));
    auto State = std::make_pair(keyOf(A1), AKeys);
    if (!Visited.insert(State).second)
      return true;
    // Word endings of the first coordinate.
    for (SetVar V : termsOf(A1)) {
      std::vector<int> T;
      for (size_t I = 0; I < As.size(); ++I)
        if (termsOf(As[I]).count(V))
          T.push_back(static_cast<int>(I));
      if (!checkSecond(T))
        return false;
    }
    for (Selector S : selsOf(A1)) {
      std::vector<Lang> NextAs;
      NextAs.reserve(As.size());
      for (const Lang &A : As)
        NextAs.push_back(stepLang(A, S));
      if (!run(stepLang(A1, S), std::move(NextAs)))
        return false;
    }
    return true;
  }
};

} // namespace

bool spidey::productContained(const Lang &A1, const Lang &B1,
                              const std::vector<std::pair<Lang, Lang>> &Rhs) {
  ProductChecker PC{Rhs, B1, {}, {}};
  std::vector<Lang> As;
  As.reserve(Rhs.size());
  for (const auto &[A, B] : Rhs)
    As.push_back(A);
  return PC.run(A1, std::move(As));
}
